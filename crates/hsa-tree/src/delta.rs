//! Instance **deltas** — structured perturbations of a [`CostModel`].
//!
//! A deployed host–satellites system never solves one frozen instance:
//! sensor rates fluctuate (per-CRU processing and communication times
//! drift), satellites speed up, slow down, join or drop out (leaves are
//! re-pinned). A [`Delta`] captures one such perturbation step as data —
//! an ordered list of [`DeltaOp`]s over an existing tree's cost model —
//! so that the same step can be (a) applied to a concrete [`CostModel`],
//! (b) replayed deterministically by benchmarks, and (c) exploited by the
//! incremental re-solver (`hsa-engine::Session`), which re-derives only
//! the state a delta actually touched.
//!
//! Deltas never change the *topology* of the CRU tree — the reasoning
//! procedure is fixed; what drifts is how expensive its parts are and
//! where sensors live. That invariant is what makes incremental
//! invalidation tractable (DESIGN.md §9).

use crate::{CostModel, CruId, CruTree, SatelliteId, TreeError};
use hsa_graph::Cost;
use serde::{Deserialize, Serialize};

/// One primitive perturbation of a cost model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaOp {
    /// Set `h_i` (host processing time) of one CRU.
    SetHostTime {
        /// The CRU.
        node: CruId,
        /// The new value.
        value: Cost,
    },
    /// Set `s_i` (satellite processing time) of one CRU.
    SetSatelliteTime {
        /// The CRU.
        node: CruId,
        /// The new value.
        value: Cost,
    },
    /// Set `c_up(i)` (uplink time) of one non-root CRU.
    SetCommUp {
        /// The CRU (must not be the root — the root has no uplink).
        node: CruId,
        /// The new value.
        value: Cost,
    },
    /// Set `c_raw(l)` (raw sensor transfer time) of one leaf.
    SetCommRaw {
        /// The leaf.
        leaf: CruId,
        /// The new value.
        value: Cost,
    },
    /// Scale every cost entry (`h`, `s`, `c_up`, `c_raw`) of every CRU in
    /// the subtree of `root` by the rational factor `num/den` (integer
    /// arithmetic, rounding towards zero). Models a whole sensor branch
    /// becoming busier or quieter.
    ScaleSubtree {
        /// Root of the scaled subtree.
        root: CruId,
        /// Scale numerator.
        num: u32,
        /// Scale denominator (must be non-zero).
        den: u32,
    },
    /// Scale `s_i` of every CRU whose subtree is uniformly pinned to
    /// `satellite` by `num/den` — a **capacity change** of that satellite
    /// (a slower box raises every processing time it could ever host).
    ScaleSatellite {
        /// The satellite whose capacity changed.
        satellite: SatelliteId,
        /// Scale numerator.
        num: u32,
        /// Scale denominator (must be non-zero).
        den: u32,
    },
    /// Re-pin a leaf's sensors to a different satellite (**churn**: the
    /// previous box dropped out, a new one serves the sensor). The raw
    /// transfer cost `c_raw` is kept; chain a [`DeltaOp::SetCommRaw`] when
    /// the new link differs.
    Repin {
        /// The leaf being re-pinned.
        leaf: CruId,
        /// Its new satellite.
        satellite: SatelliteId,
    },
}

/// An ordered batch of [`DeltaOp`]s: one perturbation step of a drifting
/// instance. Ops apply in order, so later ops observe earlier ones.
///
/// ```
/// use hsa_tree::{Delta, figures::fig2_tree};
/// use hsa_graph::Cost;
///
/// let (tree, mut costs) = fig2_tree();
/// let root = tree.root();
/// let delta = Delta::new()
///     .set_host_time(root, Cost::new(9))
///     .scale_subtree(tree.children(root)[0], 3, 2);
/// delta.apply(&tree, &mut costs).unwrap();
/// assert_eq!(costs.h(root), Cost::new(9));
/// costs.validate(&tree).unwrap();
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delta {
    ops: Vec<DeltaOp>,
}

fn scale(c: Cost, num: u32, den: u32) -> Cost {
    let scaled = c.ticks() as u128 * num as u128 / den as u128;
    Cost::new(scaled.min(u64::MAX as u128) as u64)
}

impl Delta {
    /// An empty delta (applies as a no-op).
    pub fn new() -> Delta {
        Delta::default()
    }

    /// Builds a delta from raw ops.
    pub fn from_ops(ops: Vec<DeltaOp>) -> Delta {
        Delta { ops }
    }

    /// Appends an op.
    pub fn push(&mut self, op: DeltaOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// The ops, in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when applying changes nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Chainable [`DeltaOp::SetHostTime`].
    pub fn set_host_time(mut self, node: CruId, value: Cost) -> Self {
        self.ops.push(DeltaOp::SetHostTime { node, value });
        self
    }

    /// Chainable [`DeltaOp::SetSatelliteTime`].
    pub fn set_satellite_time(mut self, node: CruId, value: Cost) -> Self {
        self.ops.push(DeltaOp::SetSatelliteTime { node, value });
        self
    }

    /// Chainable [`DeltaOp::SetCommUp`].
    pub fn set_comm_up(mut self, node: CruId, value: Cost) -> Self {
        self.ops.push(DeltaOp::SetCommUp { node, value });
        self
    }

    /// Chainable [`DeltaOp::SetCommRaw`].
    pub fn set_comm_raw(mut self, leaf: CruId, value: Cost) -> Self {
        self.ops.push(DeltaOp::SetCommRaw { leaf, value });
        self
    }

    /// Chainable [`DeltaOp::ScaleSubtree`].
    pub fn scale_subtree(mut self, root: CruId, num: u32, den: u32) -> Self {
        self.ops.push(DeltaOp::ScaleSubtree { root, num, den });
        self
    }

    /// Chainable [`DeltaOp::ScaleSatellite`].
    pub fn scale_satellite(mut self, satellite: SatelliteId, num: u32, den: u32) -> Self {
        self.ops.push(DeltaOp::ScaleSatellite {
            satellite,
            num,
            den,
        });
        self
    }

    /// Chainable [`DeltaOp::Repin`].
    pub fn repin(mut self, leaf: CruId, satellite: SatelliteId) -> Self {
        self.ops.push(DeltaOp::Repin { leaf, satellite });
        self
    }

    /// Applies every op to `costs`, in order.
    ///
    /// Each op is validated against the tree before it mutates anything
    /// (unknown CRU, uplink on the root, re-pinning an internal node, a
    /// zero scale denominator, a satellite id outside the platform). On
    /// error, ops preceding the offending one **have already been
    /// applied** — apply to a clone when atomicity matters (the engine's
    /// `Session` does exactly that).
    pub fn apply(&self, tree: &CruTree, costs: &mut CostModel) -> Result<(), TreeError> {
        for op in &self.ops {
            apply_op(op, tree, costs)?;
        }
        Ok(())
    }

    /// The CRUs whose *own* cost entries an application would touch
    /// (sorted, deduplicated). A [`DeltaOp::Repin`] touches its leaf.
    /// Like [`Delta::apply`], later ops observe earlier ones — a
    /// [`DeltaOp::ScaleSatellite`]'s membership is evaluated against the
    /// pinning as it stands *at that op*, so the set matches what an
    /// apply from `costs` would actually mutate (invalid ops contribute
    /// nothing and are skipped, as `apply` would stop there anyway).
    /// Purely informational — the incremental re-solver derives dirtiness
    /// from observed label changes, not from this set.
    pub fn touched_nodes(&self, tree: &CruTree, costs: &CostModel) -> Vec<CruId> {
        let mut rolling = costs.clone();
        let mut out: Vec<CruId> = Vec::new();
        for op in &self.ops {
            // Candidate touches from the state *before* this op…
            let touches: Vec<CruId> = match *op {
                DeltaOp::SetHostTime { node, .. }
                | DeltaOp::SetSatelliteTime { node, .. }
                | DeltaOp::SetCommUp { node, .. } => vec![node],
                DeltaOp::SetCommRaw { leaf, .. } | DeltaOp::Repin { leaf, .. } => vec![leaf],
                DeltaOp::ScaleSubtree { root, .. } => {
                    if root.index() < tree.len() {
                        tree.subtree(root)
                    } else {
                        Vec::new()
                    }
                }
                DeltaOp::ScaleSatellite { satellite, .. } => uniform_satellites(tree, &rolling)
                    .into_iter()
                    .filter(|&(_, sat)| sat == Some(satellite))
                    .map(|(c, _)| c)
                    .collect(),
            };
            // …recorded only when the op actually applies (this also
            // keeps the rolling model in step so later ops see this one).
            if apply_op(op, tree, &mut rolling).is_ok() {
                out.extend(touches);
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

fn check_node(tree: &CruTree, c: CruId) -> Result<(), TreeError> {
    if c.index() >= tree.len() {
        return Err(TreeError::CruOutOfRange {
            cru: c.0,
            len: tree.len() as u32,
        });
    }
    Ok(())
}

fn check_satellite(costs: &CostModel, s: SatelliteId) -> Result<(), TreeError> {
    if s.0 >= costs.n_satellites() {
        return Err(TreeError::CostModelMismatch(format!(
            "{s} outside the platform (only {} satellites exist)",
            costs.n_satellites()
        )));
    }
    Ok(())
}

fn check_den(den: u32) -> Result<(), TreeError> {
    if den == 0 {
        return Err(TreeError::CostModelMismatch(
            "scale denominator must be non-zero".into(),
        ));
    }
    Ok(())
}

/// For every CRU: the satellite its whole subtree is uniformly pinned to,
/// or `None` where subtrees mix satellites (one local post-order pass —
/// the same propagation the §5.1 colouring performs, minus validation).
fn uniform_satellites(tree: &CruTree, costs: &CostModel) -> Vec<(CruId, Option<SatelliteId>)> {
    let mut uniform: Vec<Option<SatelliteId>> = vec![None; tree.len()];
    for c in tree.postorder() {
        uniform[c.index()] = if tree.is_leaf(c) {
            costs.pinned_satellite(c)
        } else {
            let mut it = tree.children(c).iter();
            let first = uniform[it.next().expect("internal node has children").index()];
            if first.is_some() && it.all(|&ch| uniform[ch.index()] == first) {
                first
            } else {
                None
            }
        };
    }
    tree.postorder()
        .into_iter()
        .map(|c| (c, uniform[c.index()]))
        .collect()
}

fn apply_op(op: &DeltaOp, tree: &CruTree, costs: &mut CostModel) -> Result<(), TreeError> {
    match *op {
        DeltaOp::SetHostTime { node, value } => {
            check_node(tree, node)?;
            costs.set_host_time(node, value);
        }
        DeltaOp::SetSatelliteTime { node, value } => {
            check_node(tree, node)?;
            costs.set_satellite_time(node, value);
        }
        DeltaOp::SetCommUp { node, value } => {
            check_node(tree, node)?;
            if node == tree.root() {
                return Err(TreeError::CostModelMismatch(
                    "root has no parent, its comm_up must stay zero".into(),
                ));
            }
            costs.set_comm_up(node, value);
        }
        DeltaOp::SetCommRaw { leaf, value } => {
            check_node(tree, leaf)?;
            if !tree.is_leaf(leaf) {
                return Err(TreeError::NotALeaf(leaf));
            }
            costs.set_comm_raw(leaf, value);
        }
        DeltaOp::ScaleSubtree { root, num, den } => {
            check_node(tree, root)?;
            check_den(den)?;
            for c in tree.subtree(root) {
                costs.set_host_time(c, scale(costs.h(c), num, den));
                costs.set_satellite_time(c, scale(costs.s(c), num, den));
                // The tree root's uplink is zero and scaling keeps it zero,
                // so the validation invariant survives unconditionally.
                costs.set_comm_up(c, scale(costs.c_up(c), num, den));
                costs.set_comm_raw(c, scale(costs.c_raw(c), num, den));
            }
        }
        DeltaOp::ScaleSatellite {
            satellite,
            num,
            den,
        } => {
            check_satellite(costs, satellite)?;
            check_den(den)?;
            for (c, sat) in uniform_satellites(tree, costs) {
                if sat == Some(satellite) {
                    costs.set_satellite_time(c, scale(costs.s(c), num, den));
                }
            }
        }
        DeltaOp::Repin { leaf, satellite } => {
            check_node(tree, leaf)?;
            if !tree.is_leaf(leaf) {
                return Err(TreeError::NotALeaf(leaf));
            }
            check_satellite(costs, satellite)?;
            costs.set_pinning(leaf, Some(satellite));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig2_tree;
    use crate::TreeBuilder;

    fn c(v: u64) -> Cost {
        Cost::new(v)
    }

    #[test]
    fn set_ops_mutate_and_validate() {
        let (t, mut m) = fig2_tree();
        let leaf = *t.leaves_in_order().first().unwrap();
        let d = Delta::new()
            .set_host_time(t.root(), c(123))
            .set_satellite_time(leaf, c(45))
            .set_comm_up(leaf, c(6))
            .set_comm_raw(leaf, c(7));
        d.apply(&t, &mut m).unwrap();
        assert_eq!(m.h(t.root()), c(123));
        assert_eq!(m.s(leaf), c(45));
        assert_eq!(m.c_up(leaf), c(6));
        assert_eq!(m.c_raw(leaf), c(7));
        m.validate(&t).unwrap();
    }

    #[test]
    fn scale_subtree_scales_every_entry_in_range() {
        let (t, mut m) = fig2_tree();
        let child = t.children(t.root())[0];
        let before_in = m.h(child);
        let outside = t.children(t.root())[1];
        let before_out = m.h(outside);
        Delta::new()
            .scale_subtree(child, 3, 2)
            .apply(&t, &mut m)
            .unwrap();
        assert_eq!(m.h(child), scale(before_in, 3, 2));
        assert_eq!(m.h(outside), before_out, "outside the subtree: untouched");
        m.validate(&t).unwrap();
    }

    #[test]
    fn scale_whole_tree_keeps_root_uplink_zero() {
        let (t, mut m) = fig2_tree();
        Delta::new()
            .scale_subtree(t.root(), 7, 3)
            .apply(&t, &mut m)
            .unwrap();
        assert_eq!(m.c_up(t.root()), Cost::ZERO);
        m.validate(&t).unwrap();
    }

    #[test]
    fn scale_satellite_touches_only_uniform_subtrees() {
        // root ── a ── (l1→Sat0, l2→Sat0)
        //      └─ l3→Sat1
        let mut b = TreeBuilder::new("root");
        let root = b.root();
        let a = b.add_child(root, "a");
        let l1 = b.add_child(a, "l1");
        let l2 = b.add_child(a, "l2");
        let l3 = b.add_child(root, "l3");
        let t = b.build();
        let mut m = CostModel::zeroed(&t, 2);
        for n in t.preorder() {
            m.set_satellite_time(n, c(10));
        }
        m.pin_leaf(l1, SatelliteId(0), c(1));
        m.pin_leaf(l2, SatelliteId(0), c(1));
        m.pin_leaf(l3, SatelliteId(1), c(1));
        Delta::new()
            .scale_satellite(SatelliteId(0), 2, 1)
            .apply(&t, &mut m)
            .unwrap();
        // a, l1, l2 are uniformly Sat0 → doubled; root mixes, l3 is Sat1.
        assert_eq!(m.s(a), c(20));
        assert_eq!(m.s(l1), c(20));
        assert_eq!(m.s(l2), c(20));
        assert_eq!(m.s(root), c(10));
        assert_eq!(m.s(l3), c(10));
    }

    #[test]
    fn repin_moves_a_leaf_and_keeps_c_raw() {
        let (t, mut m) = fig2_tree();
        let leaf = *t.leaves_in_order().first().unwrap();
        let old_raw = m.c_raw(leaf);
        let new_sat = SatelliteId((m.pinned_satellite(leaf).unwrap().0 + 1) % m.n_satellites());
        Delta::new().repin(leaf, new_sat).apply(&t, &mut m).unwrap();
        assert_eq!(m.pinned_satellite(leaf), Some(new_sat));
        assert_eq!(m.c_raw(leaf), old_raw);
        m.validate(&t).unwrap();
    }

    #[test]
    fn invalid_ops_are_rejected() {
        let (t, mut m) = fig2_tree();
        let leaf = *t.leaves_in_order().first().unwrap();
        let internal = t.root();
        assert!(matches!(
            Delta::new()
                .set_host_time(CruId(999), c(1))
                .apply(&t, &mut m),
            Err(TreeError::CruOutOfRange { .. })
        ));
        assert!(Delta::new()
            .set_comm_up(t.root(), c(1))
            .apply(&t, &mut m)
            .is_err());
        assert!(matches!(
            Delta::new().set_comm_raw(internal, c(1)).apply(&t, &mut m),
            Err(TreeError::NotALeaf(_))
        ));
        assert!(matches!(
            Delta::new()
                .repin(internal, SatelliteId(0))
                .apply(&t, &mut m),
            Err(TreeError::NotALeaf(_))
        ));
        assert!(Delta::new()
            .repin(leaf, SatelliteId(99))
            .apply(&t, &mut m)
            .is_err());
        assert!(Delta::new()
            .scale_subtree(t.root(), 1, 0)
            .apply(&t, &mut m)
            .is_err());
        assert!(Delta::new()
            .scale_satellite(SatelliteId(0), 1, 0)
            .apply(&t, &mut m)
            .is_err());
        // Nothing above invalidated the model.
        m.validate(&t).unwrap();
        // And invalid ops contribute nothing to the touched set either.
        assert!(Delta::new()
            .set_host_time(CruId(999), c(1))
            .touched_nodes(&t, &m)
            .is_empty());
        assert!(Delta::new()
            .set_comm_raw(internal, c(1))
            .touched_nodes(&t, &m)
            .is_empty());
    }

    #[test]
    fn touched_nodes_cover_scaled_subtrees() {
        let (t, m) = fig2_tree();
        let child = t.children(t.root())[0];
        let d = Delta::new()
            .set_host_time(t.root(), c(1))
            .scale_subtree(child, 2, 1);
        let touched = d.touched_nodes(&t, &m);
        assert!(touched.contains(&t.root()));
        for n in t.subtree(child) {
            assert!(touched.contains(&n));
        }
        // Sorted + deduplicated.
        let mut sorted = touched.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(touched, sorted);
    }

    #[test]
    fn touched_nodes_sees_earlier_ops_like_apply_does() {
        // root ── a ── (l1→Sat0, l2→Sat1): nothing above the leaves is
        // uniformly Sat0 until l2 is re-pinned to Sat0 — a ScaleSatellite
        // after that repin must report the newly-uniform chain.
        let mut b = TreeBuilder::new("root");
        let root = b.root();
        let a = b.add_child(root, "a");
        let l1 = b.add_child(a, "l1");
        let l2 = b.add_child(a, "l2");
        let t = b.build();
        let mut m = CostModel::zeroed(&t, 2);
        for n in t.preorder() {
            m.set_satellite_time(n, c(10));
        }
        m.pin_leaf(l1, SatelliteId(0), c(1));
        m.pin_leaf(l2, SatelliteId(1), c(1));
        let d = Delta::new()
            .repin(l2, SatelliteId(0))
            .scale_satellite(SatelliteId(0), 2, 1);
        let touched = d.touched_nodes(&t, &m);
        // After the repin, root/a/l1/l2 are all uniformly Sat0: the scale
        // touches them, and apply() agrees.
        for n in [root, a, l1, l2] {
            assert!(touched.contains(&n), "{n} missing from touched set");
        }
        let mut applied = m.clone();
        d.apply(&t, &mut applied).unwrap();
        for n in [root, a, l1, l2] {
            assert_eq!(applied.s(n), c(20), "{n} must actually be scaled");
        }
    }

    #[test]
    fn delta_round_trips_through_json() {
        let d = Delta::new()
            .set_host_time(CruId(3), c(17))
            .scale_satellite(SatelliteId(1), 11, 10)
            .repin(CruId(5), SatelliteId(0));
        let json = serde_json::to_string(&d).unwrap();
        let back: Delta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.len(), 3);
        assert!(!back.is_empty());
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let (t, mut m) = fig2_tree();
        let before = m.clone();
        Delta::new().apply(&t, &mut m).unwrap();
        assert_eq!(m, before);
        assert!(Delta::new().touched_nodes(&t, &m).is_empty());
    }
}
