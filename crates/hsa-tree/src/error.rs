//! Error type for tree construction and labelling.

use crate::{CruId, TreeEdge};
use core::fmt;

/// Errors raised by the CRU tree layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// A CRU id referenced a node that does not exist.
    CruOutOfRange {
        /// The offending id.
        cru: u32,
        /// The number of CRUs in the tree.
        len: u32,
    },
    /// The operation needs a leaf but was given an internal node.
    NotALeaf(CruId),
    /// The referenced edge does not exist in the closed tree (e.g.
    /// `Parent(root)` or `Sensor(internal-node)`).
    NoSuchEdge(TreeEdge),
    /// A cost model does not cover the tree it is paired with.
    CostModelMismatch(String),
    /// A leaf has no satellite pinning (every sensor must live somewhere).
    UnpinnedLeaf(CruId),
    /// A proposed cut is not a valid antichain covering every leaf once.
    InvalidCut(String),
    /// The tree would be malformed (cycle, second root, orphan …).
    Malformed(String),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::CruOutOfRange { cru, len } => {
                write!(f, "CRU id {cru} out of range (tree has {len} CRUs)")
            }
            TreeError::NotALeaf(c) => write!(f, "{c} is not a leaf"),
            TreeError::NoSuchEdge(e) => write!(f, "edge {e} does not exist in the closed tree"),
            TreeError::CostModelMismatch(msg) => write!(f, "cost model mismatch: {msg}"),
            TreeError::UnpinnedLeaf(c) => {
                write!(f, "leaf {c} has no satellite pinning for its sensors")
            }
            TreeError::InvalidCut(msg) => write!(f, "invalid cut: {msg}"),
            TreeError::Malformed(msg) => write!(f, "malformed tree: {msg}"),
        }
    }
}

impl std::error::Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(TreeError::CruOutOfRange { cru: 7, len: 3 }
            .to_string()
            .contains("7"));
        assert!(TreeError::NotALeaf(CruId(2)).to_string().contains("CRU2"));
        assert!(TreeError::NoSuchEdge(TreeEdge::Sensor(CruId(1)))
            .to_string()
            .contains("A,CRU1"));
    }
}
