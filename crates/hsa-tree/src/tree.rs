//! The ordered (planar) CRU tree.
//!
//! The paper's model (§3) is a tree of CRUs whose *drawing* matters: the
//! assignment-graph construction of §5.2 is a planar dual, so children keep
//! the left-to-right order in which they are attached. The left-to-right
//! order of the leaves is what the dual construction (in `hsa-assign`)
//! indexes its faces with, and "leftmost child" drives the σ labelling of
//! Figure 8.

use crate::hash::{Fnv1a, HashCache};
use crate::{CruId, TreeError};
use serde::{Deserialize, Serialize};

/// One CRU node.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq, Hash)]
pub struct CruNode {
    /// Parent CRU; `None` for the root.
    pub parent: Option<CruId>,
    /// Children in left-to-right (planar) order.
    pub children: Vec<CruId>,
    /// Human-readable name (e.g. `"QRS-detect"`); defaults to `CRU<i>`.
    pub name: String,
}

/// An ordered rooted tree of CRUs, stored as an arena.
///
/// Construct with [`TreeBuilder`] (which can only build well-formed trees)
/// or deserialise and [`CruTree::validate`].
///
/// Carries a lazily-computed [`content_hash`](CruTree::content_hash):
/// trees are immutable after construction (no `&mut` accessor exists), so
/// the cache is filled at most once per tree and shared by every
/// subsequent identity check.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CruTree {
    nodes: Vec<CruNode>,
    root: CruId,
    cache: HashCache,
}

// The hash cache is not part of the value: serialise exactly the fields
// the derive would have emitted before the cache existed, so the wire
// format is unchanged. (The vendored derive has no `#[serde(skip)]`.)
impl Serialize for CruTree {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("nodes".to_string(), Serialize::to_value(&self.nodes)),
            ("root".to_string(), Serialize::to_value(&self.root)),
        ])
    }
}

impl Deserialize for CruTree {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::DeError::custom("expected map for struct CruTree"))?;
        Ok(CruTree {
            nodes: Deserialize::from_value(serde::value::field(m, "nodes")?)?,
            root: Deserialize::from_value(serde::value::field(m, "root")?)?,
            cache: HashCache::default(),
        })
    }
}

impl CruTree {
    /// The FNV-1a content hash of the tree's structure: node count, root,
    /// and per node its parent, ordered children and name. Computed once
    /// and cached ([`HashCache`]); subsequent calls are one atomic load.
    pub fn content_hash(&self) -> u64 {
        self.cache.get_or_compute(|| {
            let mut h = Fnv1a::new();
            h.write_u64(self.nodes.len() as u64);
            h.write_u32(self.root.0);
            for n in &self.nodes {
                // `parent + 1` with 0 for "none" keeps the stream dense.
                h.write_u32(n.parent.map_or(0, |p| p.0 + 1));
                h.write_u64(n.children.len() as u64);
                for &c in &n.children {
                    h.write_u32(c.0);
                }
                h.write_bytes(n.name.as_bytes());
            }
            h.finish()
        })
    }

    /// The root CRU (the ultimate reasoning step, consumed by the
    /// application on the host).
    #[inline]
    pub fn root(&self) -> CruId {
        self.root
    }

    /// Number of CRUs.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has no nodes (never produced by the builder; kept
    /// for completeness of the container API).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a node.
    pub fn node(&self, c: CruId) -> Result<&CruNode, TreeError> {
        self.nodes.get(c.index()).ok_or(TreeError::CruOutOfRange {
            cru: c.0,
            len: self.nodes.len() as u32,
        })
    }

    /// Panicking node lookup for hot loops.
    #[inline]
    pub fn node_unchecked(&self, c: CruId) -> &CruNode {
        &self.nodes[c.index()]
    }

    /// The parent of `c`, or `None` for the root.
    pub fn parent(&self, c: CruId) -> Option<CruId> {
        self.nodes[c.index()].parent
    }

    /// The ordered children of `c`.
    pub fn children(&self, c: CruId) -> &[CruId] {
        &self.nodes[c.index()].children
    }

    /// Whether `c` is a leaf (no children — its inputs come from sensors).
    pub fn is_leaf(&self, c: CruId) -> bool {
        self.nodes[c.index()].children.is_empty()
    }

    /// Whether `c` is the leftmost child of its parent (drives the Figure 8
    /// σ labelling).
    pub fn is_leftmost_child(&self, c: CruId) -> bool {
        match self.parent(c) {
            Some(p) => self.children(p).first() == Some(&c),
            None => false,
        }
    }

    /// All CRU ids in pre-order (root, then each subtree left to right).
    pub fn preorder(&self) -> Vec<CruId> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack = vec![self.root];
        while let Some(c) = stack.pop() {
            out.push(c);
            // Push children reversed so the leftmost pops first.
            for &ch in self.children(c).iter().rev() {
                stack.push(ch);
            }
        }
        out
    }

    /// All CRU ids in post-order (children before parents) — the order in
    /// which a single processor must execute a subtree.
    pub fn postorder(&self) -> Vec<CruId> {
        let mut out = Vec::with_capacity(self.len());
        self.postorder_rec(self.root, &mut out);
        out
    }

    fn postorder_rec(&self, c: CruId, out: &mut Vec<CruId>) {
        for &ch in self.children(c) {
            self.postorder_rec(ch, out);
        }
        out.push(c);
    }

    /// The leaves in left-to-right planar order — the face indexing of the
    /// dual construction.
    pub fn leaves_in_order(&self) -> Vec<CruId> {
        self.preorder()
            .into_iter()
            .filter(|&c| self.is_leaf(c))
            .collect()
    }

    /// For every node, the half-open interval `[lo, hi)` of leaf positions
    /// (in [`CruTree::leaves_in_order`]) its subtree spans. Leaves span a
    /// single position.
    pub fn leaf_spans(&self) -> Vec<(u32, u32)> {
        let mut spans = vec![(0u32, 0u32); self.len()];
        let mut next_leaf = 0u32;
        self.spans_rec(self.root, &mut next_leaf, &mut spans);
        spans
    }

    fn spans_rec(&self, c: CruId, next_leaf: &mut u32, spans: &mut [(u32, u32)]) {
        let lo = *next_leaf;
        if self.is_leaf(c) {
            *next_leaf += 1;
        } else {
            for &ch in self.children(c) {
                self.spans_rec(ch, next_leaf, spans);
            }
        }
        spans[c.index()] = (lo, *next_leaf);
    }

    /// All CRUs in the subtree rooted at `c` (including `c`), pre-order.
    pub fn subtree(&self, c: CruId) -> Vec<CruId> {
        let mut out = Vec::new();
        let mut stack = vec![c];
        while let Some(x) = stack.pop() {
            out.push(x);
            for &ch in self.children(x).iter().rev() {
                stack.push(ch);
            }
        }
        out
    }

    /// Depth of each node (root = 0).
    pub fn depths(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.len()];
        for c in self.preorder() {
            if let Some(p) = self.parent(c) {
                d[c.index()] = d[p.index()] + 1;
            }
        }
        d
    }

    /// The lowest common ancestor of two nodes.
    pub fn lca(&self, a: CruId, b: CruId) -> CruId {
        let depths = self.depths();
        let (mut a, mut b) = (a, b);
        while depths[a.index()] > depths[b.index()] {
            a = self.parent(a).expect("non-root has parent");
        }
        while depths[b.index()] > depths[a.index()] {
            b = self.parent(b).expect("non-root has parent");
        }
        while a != b {
            a = self.parent(a).expect("walk reaches root");
            b = self.parent(b).expect("walk reaches root");
        }
        a
    }

    /// Checks structural invariants (used after deserialisation): exactly
    /// one root, parent/child agreement, all nodes reachable, no cycles.
    pub fn validate(&self) -> Result<(), TreeError> {
        if self.nodes.is_empty() {
            return Err(TreeError::Malformed("empty tree".into()));
        }
        if self.root.index() >= self.nodes.len() {
            return Err(TreeError::Malformed("root id out of range".into()));
        }
        if self.nodes[self.root.index()].parent.is_some() {
            return Err(TreeError::Malformed("root has a parent".into()));
        }
        let mut seen = vec![false; self.len()];
        let mut stack = vec![self.root];
        let mut count = 0usize;
        while let Some(c) = stack.pop() {
            if seen[c.index()] {
                return Err(TreeError::Malformed(format!("{c} reached twice (cycle?)")));
            }
            seen[c.index()] = true;
            count += 1;
            for &ch in self.children(c) {
                if ch.index() >= self.nodes.len() {
                    return Err(TreeError::Malformed(format!("child {ch} out of range")));
                }
                if self.nodes[ch.index()].parent != Some(c) {
                    return Err(TreeError::Malformed(format!(
                        "{ch} disagrees about its parent"
                    )));
                }
                stack.push(ch);
            }
        }
        if count != self.len() {
            return Err(TreeError::Malformed(format!(
                "{} of {} nodes unreachable from the root",
                self.len() - count,
                self.len()
            )));
        }
        Ok(())
    }

    /// Creates a tree directly from arena parts. Prefer [`TreeBuilder`];
    /// this is the deserialisation/interop entry point and validates.
    pub fn from_parts(nodes: Vec<CruNode>, root: CruId) -> Result<Self, TreeError> {
        let t = CruTree {
            nodes,
            root,
            cache: HashCache::default(),
        };
        t.validate()?;
        Ok(t)
    }
}

/// Builder producing well-formed [`CruTree`]s by construction.
///
/// ```
/// use hsa_tree::TreeBuilder;
/// let mut b = TreeBuilder::new("root");
/// let root = b.root();
/// let left = b.add_child(root, "left");
/// let _ = b.add_child(left, "leaf");
/// let _ = b.add_child(root, "right");
/// let tree = b.build();
/// assert_eq!(tree.len(), 4);
/// assert_eq!(tree.leaves_in_order().len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct TreeBuilder {
    nodes: Vec<CruNode>,
}

impl TreeBuilder {
    /// Starts a tree with its root CRU (id 0).
    pub fn new(root_name: impl Into<String>) -> Self {
        TreeBuilder {
            nodes: vec![CruNode {
                parent: None,
                children: Vec::new(),
                name: root_name.into(),
            }],
        }
    }

    /// The root id (always `CRU0` for built trees).
    pub fn root(&self) -> CruId {
        CruId(0)
    }

    /// Appends a child under `parent` (to the right of its siblings) and
    /// returns its id.
    ///
    /// # Panics
    /// Panics if `parent` has not been allocated by this builder.
    pub fn add_child(&mut self, parent: CruId, name: impl Into<String>) -> CruId {
        assert!(parent.index() < self.nodes.len(), "unknown parent");
        let id = CruId(self.nodes.len() as u32);
        self.nodes.push(CruNode {
            parent: Some(parent),
            children: Vec::new(),
            name: name.into(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Appends a chain of `len` nodes under `parent`; returns the deepest id.
    pub fn add_chain(&mut self, parent: CruId, len: usize, prefix: &str) -> CruId {
        let mut at = parent;
        for i in 0..len {
            at = self.add_child(at, format!("{prefix}{i}"));
        }
        at
    }

    /// Number of nodes allocated so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: the builder starts with a root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Finishes the tree.
    pub fn build(self) -> CruTree {
        let t = CruTree {
            nodes: self.nodes,
            root: CruId(0),
            cache: HashCache::default(),
        };
        debug_assert!(t.validate().is_ok());
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// root ── a ── (l1, l2)
    ///      └─ b (leaf)
    fn small() -> CruTree {
        let mut b = TreeBuilder::new("root");
        let root = b.root();
        let a = b.add_child(root, "a");
        b.add_child(a, "l1");
        b.add_child(a, "l2");
        b.add_child(root, "b");
        b.build()
    }

    #[test]
    fn construction_and_navigation() {
        let t = small();
        assert_eq!(t.len(), 5);
        assert_eq!(t.root(), CruId(0));
        assert_eq!(t.children(CruId(0)), &[CruId(1), CruId(4)]);
        assert_eq!(t.parent(CruId(2)), Some(CruId(1)));
        assert!(t.is_leaf(CruId(2)));
        assert!(!t.is_leaf(CruId(1)));
        assert!(t.is_leftmost_child(CruId(1)));
        assert!(!t.is_leftmost_child(CruId(4)));
        assert!(!t.is_leftmost_child(CruId(0))); // root
    }

    #[test]
    fn traversal_orders() {
        let t = small();
        let pre: Vec<u32> = t.preorder().iter().map(|c| c.0).collect();
        assert_eq!(pre, vec![0, 1, 2, 3, 4]);
        let post: Vec<u32> = t.postorder().iter().map(|c| c.0).collect();
        assert_eq!(post, vec![2, 3, 1, 4, 0]);
    }

    #[test]
    fn leaves_and_spans() {
        let t = small();
        let leaves: Vec<u32> = t.leaves_in_order().iter().map(|c| c.0).collect();
        assert_eq!(leaves, vec![2, 3, 4]);
        let spans = t.leaf_spans();
        assert_eq!(spans[0], (0, 3)); // root spans all leaves
        assert_eq!(spans[1], (0, 2)); // a spans l1,l2
        assert_eq!(spans[2], (0, 1));
        assert_eq!(spans[3], (1, 2));
        assert_eq!(spans[4], (2, 3));
    }

    #[test]
    fn subtree_and_depths() {
        let t = small();
        let sub: Vec<u32> = t.subtree(CruId(1)).iter().map(|c| c.0).collect();
        assert_eq!(sub, vec![1, 2, 3]);
        assert_eq!(t.depths(), vec![0, 1, 2, 2, 1]);
    }

    #[test]
    fn lca_works() {
        let t = small();
        assert_eq!(t.lca(CruId(2), CruId(3)), CruId(1));
        assert_eq!(t.lca(CruId(2), CruId(4)), CruId(0));
        assert_eq!(t.lca(CruId(1), CruId(2)), CruId(1));
        assert_eq!(t.lca(CruId(0), CruId(0)), CruId(0));
    }

    #[test]
    fn single_node_tree() {
        let t = TreeBuilder::new("only").build();
        assert_eq!(t.len(), 1);
        assert!(t.is_leaf(t.root()));
        assert_eq!(t.leaves_in_order(), vec![CruId(0)]);
        assert_eq!(t.leaf_spans()[0], (0, 1));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn chains() {
        let mut b = TreeBuilder::new("r");
        let root = b.root();
        let deep = b.add_chain(root, 4, "c");
        let t = b.build();
        assert_eq!(t.len(), 5);
        assert_eq!(t.depths()[deep.index()], 4);
        assert_eq!(t.leaves_in_order(), vec![deep]);
    }

    #[test]
    fn validate_catches_malformed_trees() {
        // Child disagreeing about its parent.
        let nodes = vec![
            CruNode {
                parent: None,
                children: vec![CruId(1)],
                name: "r".into(),
            },
            CruNode {
                parent: None, // wrong: should be Some(CruId(0))
                children: vec![],
                name: "x".into(),
            },
        ];
        assert!(CruTree::from_parts(nodes, CruId(0)).is_err());

        // Unreachable node.
        let nodes = vec![
            CruNode {
                parent: None,
                children: vec![],
                name: "r".into(),
            },
            CruNode {
                parent: Some(CruId(0)),
                children: vec![],
                name: "orphan".into(),
            },
        ];
        assert!(CruTree::from_parts(nodes, CruId(0)).is_err());

        // Empty tree.
        assert!(CruTree::from_parts(vec![], CruId(0)).is_err());
    }

    #[test]
    fn node_lookup_errors() {
        let t = small();
        assert!(t.node(CruId(99)).is_err());
        assert_eq!(t.node(CruId(1)).unwrap().name, "a");
    }
}
