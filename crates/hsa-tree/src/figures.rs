//! Canonical reconstruction of the paper's worked example (Figures 2, 5, 8).
//!
//! The 2007 scan is OCR-damaged, so the exact Figure 2 topology is partly
//! unrecoverable; this module reconstructs a 13-CRU tree that satisfies
//! **every** constraint the surviving text states:
//!
//! * CRU1 is the root with children CRU2 and CRU3, and the colour
//!   propagation conflicts exactly on ⟨CRU1,CRU2⟩ and ⟨CRU1,CRU3⟩, forcing
//!   {CRU1, CRU2, CRU3} onto the host (Figure 5);
//! * ⟨CRU3,CRU6⟩ separates the subtree {CRU6, CRU13}, so its β weight is
//!   `s6 + s13 + c_{6,3}` (§5.3's first example);
//! * CRU10's raw-data edge ⟨A,CRU10⟩ has β = `c_{s,10}` (§5.3's second
//!   example);
//! * the σ labels of Figure 8 appear verbatim: `h1+h2` on ⟨CRU2,CRU4⟩,
//!   `h1+h2+h4+h9` on CRU9's sensor edge, `h10` on CRU10's, `h3+h6+h13` on
//!   CRU13's, `h7`/`h8` on CRU7/CRU8's;
//! * one satellite (B) serves sensors from two different subtrees — the
//!   paper's "some sensors are physically linked to the same satellite"
//!   (we read "the sensors connected to CRU5" as the sensors feeding
//!   CRU5's subtree, since Figure 8 gives CRU5 children CRU11/CRU12).
//!
//! Topology (paper ids; arena id = paper id − 1, see [`cru`]):
//!
//! ```text
//!                         CRU1
//!                 ┌────────┴────────┐
//!               CRU2              CRU3
//!             ┌───┴───┐       ┌────┼─────┐
//!           CRU4    CRU5    CRU6  CRU7  CRU8
//!          ┌─┴─┐   ┌─┴─┐      │
//!        CRU9 CRU10 CRU11 CRU12 CRU13
//!         (R)  (R)  (B)  (B)   (B)  (Y)  (G)
//! ```
//!
//! Satellites: R = `Sat0`, Y = `Sat1`, B = `Sat2`, G = `Sat3`. Leaf order is
//! [9, 10, 11, 12, 13, 7, 8]; colour bands are R·R | B·B·B | Y | G (all
//! contiguous — the interleaved regime is exercised by dedicated instances
//! elsewhere in the test-suite).

use crate::{CostModel, CruId, CruTree, SatelliteId, TreeBuilder};
use hsa_graph::Cost;

/// Maps a paper CRU number (1-based) to the arena id used by
/// [`fig2_tree`].
pub const fn cru(paper_id: u32) -> CruId {
    CruId(paper_id - 1)
}

/// Satellite "R" (Red).
pub const SAT_R: SatelliteId = SatelliteId(0);
/// Satellite "Y" (Yellow).
pub const SAT_Y: SatelliteId = SatelliteId(1);
/// Satellite "B" (Blue).
pub const SAT_B: SatelliteId = SatelliteId(2);
/// Satellite "G" (Green).
pub const SAT_G: SatelliteId = SatelliteId(3);

/// Builds the canonical Figure 2 tree with a deterministic cost model.
///
/// Costs are small distinct integers chosen so that every labelling test
/// can assert exact values: `h_k = 10 + k`, `s_k = 20 + 2k`,
/// `c_up(k) = 5 + k`, `c_raw(leaf) = 30 + leaf`.
pub fn fig2_tree() -> (CruTree, CostModel) {
    let mut b = TreeBuilder::new("CRU1");
    let c1 = b.root();
    // Breadth-first additions keep arena id = paper id − 1.
    let c2 = b.add_child(c1, "CRU2");
    let c3 = b.add_child(c1, "CRU3");
    let c4 = b.add_child(c2, "CRU4");
    let c5 = b.add_child(c2, "CRU5");
    let c6 = b.add_child(c3, "CRU6");
    let c7 = b.add_child(c3, "CRU7");
    let c8 = b.add_child(c3, "CRU8");
    let c9 = b.add_child(c4, "CRU9");
    let c10 = b.add_child(c4, "CRU10");
    let c11 = b.add_child(c5, "CRU11");
    let c12 = b.add_child(c5, "CRU12");
    let c13 = b.add_child(c6, "CRU13");
    let tree = b.build();

    debug_assert_eq!(c9, cru(9));
    debug_assert_eq!(c13, cru(13));

    let mut m = CostModel::zeroed(&tree, 4);
    for k in 1..=13u32 {
        let id = cru(k);
        m.set_host_time(id, Cost::new(10 + k as u64));
        m.set_satellite_time(id, Cost::new(20 + 2 * k as u64));
        if k != 1 {
            m.set_comm_up(id, Cost::new(5 + k as u64));
        }
    }
    for (leaf, sat) in [
        (c9, SAT_R),
        (c10, SAT_R),
        (c11, SAT_B),
        (c12, SAT_B),
        (c13, SAT_B),
        (c7, SAT_Y),
        (c8, SAT_G),
    ] {
        let raw = Cost::new(30 + leaf.0 as u64 + 1);
        m.pin_leaf(leaf, sat, raw);
    }
    debug_assert!(m.validate(&tree).is_ok());
    (tree, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Colour, Colouring, TreeEdge};

    #[test]
    fn topology_matches_the_paper() {
        let (t, _) = fig2_tree();
        assert_eq!(t.len(), 13);
        assert_eq!(t.root(), cru(1));
        assert_eq!(t.children(cru(1)), &[cru(2), cru(3)]);
        assert_eq!(t.children(cru(2)), &[cru(4), cru(5)]);
        assert_eq!(t.children(cru(3)), &[cru(6), cru(7), cru(8)]);
        assert_eq!(t.children(cru(6)), &[cru(13)]);
        let leaves: Vec<u32> = t.leaves_in_order().iter().map(|c| c.0 + 1).collect();
        assert_eq!(leaves, vec![9, 10, 11, 12, 13, 7, 8]);
    }

    #[test]
    fn figure5_colouring_forces_cru1_2_3_onto_the_host() {
        let (t, m) = fig2_tree();
        let col = Colouring::compute(&t, &m).unwrap();
        let forced: Vec<u32> = col.host_forced.iter().map(|c| c.0 + 1).collect();
        assert_eq!(forced, vec![1, 2, 3]);
        // Subtree colours named in the figure.
        assert_eq!(col.node_colour[cru(4).index()], Colour::Satellite(SAT_R));
        assert_eq!(col.node_colour[cru(5).index()], Colour::Satellite(SAT_B));
        assert_eq!(col.node_colour[cru(6).index()], Colour::Satellite(SAT_B));
        assert_eq!(col.node_colour[cru(7).index()], Colour::Satellite(SAT_Y));
        assert_eq!(col.node_colour[cru(8).index()], Colour::Satellite(SAT_G));
        assert_eq!(col.node_colour[cru(2).index()], Colour::Conflict);
        assert_eq!(col.node_colour[cru(3).index()], Colour::Conflict);
    }

    #[test]
    fn satellite_b_serves_two_subtrees() {
        let (t, m) = fig2_tree();
        let col = Colouring::compute(&t, &m).unwrap();
        // B colours ⟨CRU2,CRU5⟩ (under CRU2) and ⟨CRU3,CRU6⟩ (under CRU3).
        assert_eq!(
            col.edge_colour(TreeEdge::Parent(cru(5))),
            Colour::Satellite(SAT_B)
        );
        assert_eq!(
            col.edge_colour(TreeEdge::Parent(cru(6))),
            Colour::Satellite(SAT_B)
        );
        assert_eq!(t.lca(cru(11), cru(13)), cru(1)); // different subtrees
                                                     // …but contiguous in leaf order:
        assert!(col.is_contiguous());
    }

    #[test]
    fn costs_are_fully_populated() {
        let (t, m) = fig2_tree();
        m.validate(&t).unwrap();
        assert_eq!(m.h(cru(1)), Cost::new(11));
        assert_eq!(m.s(cru(13)), Cost::new(46));
        assert_eq!(m.c_up(cru(6)), Cost::new(11));
        assert_eq!(m.c_up(cru(1)), Cost::ZERO);
    }
}
