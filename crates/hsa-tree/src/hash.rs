//! Word-wise FNV-1a hashing and the lazily-computed content-hash cache
//! behind [`CruTree::content_hash`](crate::CruTree::content_hash) and
//! [`CostModel::content_hash`](crate::CostModel::content_hash).
//!
//! The engine keys its instance cache by a structural hash of the tree and
//! cost model. Recomputing that hash on every request is O(instance) work
//! that dominates the per-request floor once the solve itself is cached, so
//! each structure carries a [`HashCache`]: a single atomic word that is
//! empty until the first [`HashCache::get_or_compute`] and is reset by
//! every mutating accessor. Hot requests then pay two relaxed atomic loads
//! instead of two full traversals.
//!
//! [`Fnv1a`] is the same FNV-1a the engine used per byte, widened to fold
//! one `u64` word per multiply. For the word streams the content hashes
//! feed it (ids, counts, packed name bytes) this is 8× fewer multiplies for
//! the same diffusion guarantees FNV gives: every input word still passes
//! through the full xor-multiply pipeline.

use std::sync::atomic::{AtomicU64, Ordering};

/// FNV-1a over `u64` words (little-endian packing for byte input).
///
/// The classic byte-wise FNV-1a constants are kept — `offset` as the seed,
/// the 64-bit FNV prime as the multiplier — but the xor step folds in a
/// whole word at a time. Byte strings enter via [`Fnv1a::write_bytes`],
/// which length-prefixes and packs them into words, so distinct byte
/// streams remain distinct word streams.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    #[inline]
    pub fn new() -> Fnv1a {
        Fnv1a(Self::OFFSET)
    }

    /// Folds one word into the state.
    #[inline]
    pub fn write_u64(&mut self, word: u64) -> &mut Self {
        self.0 = (self.0 ^ word).wrapping_mul(Self::PRIME);
        self
    }

    /// Folds a `u32` (zero-extended to a word).
    #[inline]
    pub fn write_u32(&mut self, word: u32) -> &mut Self {
        self.write_u64(word as u64)
    }

    /// Folds a byte string: length prefix, then the bytes packed
    /// little-endian into words (final partial word zero-padded). The
    /// prefix makes `("ab", "c")` and `("a", "bc")` hash differently when
    /// written in sequence.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
        self
    }

    /// The current state.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// A lazily-computed, mutation-invalidated cache for a structure's content
/// hash.
///
/// Semantically this field is **not part of the value**: two structures
/// with equal content are equal whatever their caches hold, and the cache
/// never travels over the wire. The trait impls below encode exactly that —
/// [`PartialEq`] always matches, [`Hash`](std::hash::Hash) writes nothing —
/// so containing types keep their derived `PartialEq`/`Eq`/`Hash`
/// behaviour bit-for-bit.
///
/// Concurrency: reads race benignly. `0` is the "unset" sentinel; if two
/// threads compute simultaneously they store the same deterministic value.
/// Invalidation takes `&mut self`, which the borrow checker already
/// requires for any content mutation, so a shared reference can never
/// observe a stale hash.
#[derive(Default)]
pub struct HashCache(AtomicU64);

/// Stand-in stored when a content hash happens to be `0` (the unset
/// sentinel). One fixed non-zero constant keeps the cache lossless: the
/// swap is applied symmetrically on store and load.
const ZERO_STANDIN: u64 = Fnv1a::OFFSET;

impl HashCache {
    /// Returns the cached hash, computing and caching it via `f` if unset.
    #[inline]
    pub fn get_or_compute(&self, f: impl FnOnce() -> u64) -> u64 {
        match self.0.load(Ordering::Relaxed) {
            0 => {
                let h = f();
                self.0
                    .store(if h == 0 { ZERO_STANDIN } else { h }, Ordering::Relaxed);
                h
            }
            h if h == ZERO_STANDIN => 0,
            h => h,
        }
    }

    /// Clears the cache; the next [`HashCache::get_or_compute`] recomputes.
    /// Requires `&mut self` — exactly the access any content mutation
    /// already holds.
    #[inline]
    pub fn invalidate(&mut self) {
        *self.0.get_mut() = 0;
    }
}

impl Clone for HashCache {
    /// Clones carry the cached value: all mutation funnels through
    /// invalidating setters, so a clone's content matches its cache.
    fn clone(&self) -> Self {
        HashCache(AtomicU64::new(self.0.load(Ordering::Relaxed)))
    }
}

impl std::fmt::Debug for HashCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.load(Ordering::Relaxed) {
            0 => write!(f, "HashCache(unset)"),
            h => write!(f, "HashCache({h:#018x})"),
        }
    }
}

impl PartialEq for HashCache {
    /// Caches never affect value equality.
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for HashCache {}

impl std::hash::Hash for HashCache {
    /// Caches never affect the (std) hash of the containing value.
    fn hash<H: std::hash::Hasher>(&self, _: &mut H) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_feed_the_fnv_pipeline() {
        let mut a = Fnv1a::new();
        a.write_u64(1).write_u64(2);
        let mut b = Fnv1a::new();
        b.write_u64(2).write_u64(1);
        assert_ne!(a.finish(), b.finish(), "order must matter");
        assert_ne!(Fnv1a::new().finish(), 0);
    }

    #[test]
    fn byte_packing_is_prefix_free() {
        let mut a = Fnv1a::new();
        a.write_bytes(b"ab").write_bytes(b"c");
        let mut b = Fnv1a::new();
        b.write_bytes(b"a").write_bytes(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn cache_computes_once_and_invalidates() {
        let mut cache = HashCache::default();
        let mut calls = 0;
        let h = cache.get_or_compute(|| {
            calls += 1;
            42
        });
        assert_eq!(h, 42);
        let h2 = cache.get_or_compute(|| unreachable!("must be cached"));
        assert_eq!(h2, 42);
        assert_eq!(calls, 1);
        cache.invalidate();
        assert_eq!(cache.get_or_compute(|| 7), 7);
    }

    #[test]
    fn zero_hash_round_trips() {
        let cache = HashCache::default();
        assert_eq!(cache.get_or_compute(|| 0), 0);
        assert_eq!(cache.get_or_compute(|| unreachable!("cached")), 0);
    }

    #[test]
    fn cache_is_value_transparent() {
        let a = HashCache::default();
        a.get_or_compute(|| 5);
        let b = HashCache::default();
        assert_eq!(a, b, "cache state must not affect equality");
        let cloned = a.clone();
        assert_eq!(cloned.get_or_compute(|| unreachable!("carried")), 5);
    }
}
