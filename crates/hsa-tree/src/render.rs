//! ASCII rendering of costed, coloured CRU trees — used by examples and the
//! figure-reproduction harness (`repro --exp f2`).

use crate::{Colour, Colouring, CostModel, CruId, CruTree};
use std::fmt::Write as _;

/// Renders the tree one node per line with box-drawing guides, e.g.
///
/// ```text
/// CRU1 "root" [host-forced]
/// ├── CRU2 "a" (h=12 s=24) → Sat0
/// │   └── CRU4 "leaf" (h=14 s=28) ⚓ Sat0
/// └── CRU3 "b" (h=13 s=26) → Sat1
/// ```
///
/// `⚓` marks a leaf's physical sensor pinning; `→` shows the propagated
/// subtree colour; `[host-forced]` marks conflicted nodes.
pub fn render_tree(tree: &CruTree, costs: Option<&CostModel>, col: Option<&Colouring>) -> String {
    let mut out = String::new();
    render_node(tree, costs, col, tree.root(), "", "", &mut out);
    out
}

fn render_node(
    tree: &CruTree,
    costs: Option<&CostModel>,
    col: Option<&Colouring>,
    c: CruId,
    prefix: &str,
    child_prefix: &str,
    out: &mut String,
) {
    let node = tree.node_unchecked(c);
    let _ = write!(out, "{prefix}{c} \"{}\"", node.name);
    if let Some(m) = costs {
        let _ = write!(out, " (h={} s={})", m.h(c), m.s(c));
    }
    if let Some(colouring) = col {
        match colouring.node_colour[c.index()] {
            Colour::Conflict => {
                let _ = write!(out, " [host-forced]");
            }
            Colour::Satellite(s) => {
                if tree.is_leaf(c) {
                    let _ = write!(out, " ⚓ {s}");
                } else {
                    let _ = write!(out, " → {s}");
                }
            }
        }
    }
    out.push('\n');
    let children = tree.children(c);
    for (i, &ch) in children.iter().enumerate() {
        let last = i + 1 == children.len();
        let (head, tail) = if last {
            ("└── ", "    ")
        } else {
            ("├── ", "│   ")
        };
        render_node(
            tree,
            costs,
            col,
            ch,
            &format!("{child_prefix}{head}"),
            &format!("{child_prefix}{tail}"),
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig2_tree;

    #[test]
    fn renders_every_node_once() {
        let (t, m) = fig2_tree();
        let col = Colouring::compute(&t, &m).unwrap();
        let s = render_tree(&t, Some(&m), Some(&col));
        assert_eq!(s.lines().count(), t.len());
        for k in 1..=13 {
            assert!(
                s.contains(&format!("\"CRU{k}\"")),
                "missing CRU{k} in:\n{s}"
            );
        }
        assert!(s.contains("[host-forced]"));
        assert!(s.contains("⚓"));
    }

    #[test]
    fn bare_render_without_costs_or_colours() {
        let (t, _) = fig2_tree();
        let s = render_tree(&t, None, None);
        assert!(!s.contains("(h="));
        assert!(!s.contains("host-forced"));
        assert_eq!(s.lines().count(), 13);
    }

    #[test]
    fn guides_are_present() {
        let (t, _) = fig2_tree();
        let s = render_tree(&t, None, None);
        assert!(s.contains("├──"));
        assert!(s.contains("└──"));
    }
}
