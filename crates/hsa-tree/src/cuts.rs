//! Cuts of the closed CRU tree.
//!
//! A **cut** is the tree-side image of an S→T path in the assignment graph
//! (paper §5.2): a set of closed-tree edges forming an *antichain that
//! covers every leaf exactly once*. Equivalently, walking any leaf's path
//! from the dummy sensor node A up to the root crosses exactly one cut
//! edge. Everything strictly below a cut `Parent` edge runs on that
//! subtree's satellite; everything else runs on the host.
//!
//! This module provides validation, enumeration (the brute-force oracle),
//! and the canonical extreme cuts (all-on-host, maximal offload).

use crate::{Colouring, CruId, CruTree, TreeEdge, TreeError};
use serde::{DeError, Deserialize, Serialize, Value};

/// A validated cut, normalised to sorted edge order.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cut {
    edges: Vec<TreeEdge>,
}

impl Serialize for Cut {
    fn to_value(&self) -> Value {
        self.edges.to_value()
    }
}

// Deserialisation re-normalises (sort + dedup) but cannot re-validate the
// antichain property without the tree in hand; wire consumers that need the
// guarantee call [`Cut::validate`] against their copy of the tree.
impl Deserialize for Cut {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let mut edges = Vec::<TreeEdge>::from_value(v)?;
        edges.sort();
        edges.dedup();
        Ok(Cut { edges })
    }
}

impl Cut {
    /// Builds a cut after validating it against `tree`.
    pub fn new(tree: &CruTree, mut edges: Vec<TreeEdge>) -> Result<Cut, TreeError> {
        edges.sort();
        edges.dedup();
        let cut = Cut { edges };
        cut.validate(tree)?;
        Ok(cut)
    }

    /// Builds a cut that is known-valid by construction — frontier
    /// assembly, enumeration and the other walk-free producers whose edge
    /// sets satisfy the antichain property structurally. Skips the O(n)
    /// validation of [`Cut::new`] (debug builds still assert it), which is
    /// what keeps the steady-state answer path free of tree walks.
    pub fn trusted(tree: &CruTree, mut edges: Vec<TreeEdge>) -> Cut {
        edges.sort();
        let cut = Cut { edges };
        debug_assert!(cut.validate(tree).is_ok());
        cut
    }

    /// The cut edges, sorted.
    pub fn edges(&self) -> &[TreeEdge] {
        &self.edges
    }

    /// Checks the antichain-covering-every-leaf-once property.
    pub fn validate(&self, tree: &CruTree) -> Result<(), TreeError> {
        // Existence checks.
        for &e in &self.edges {
            match e {
                TreeEdge::Parent(c) => {
                    tree.node(c)?;
                    if c == tree.root() {
                        return Err(TreeError::NoSuchEdge(e));
                    }
                }
                TreeEdge::Sensor(l) => {
                    tree.node(l)?;
                    if !tree.is_leaf(l) {
                        return Err(TreeError::NoSuchEdge(e));
                    }
                }
            }
        }
        // Count crossings per leaf: leaf l's A→root path consists of
        // Sensor(l) then Parent(x) for every x on l's path to the root.
        let spans = tree.leaf_spans();
        let leaves = tree.leaves_in_order();
        let mut crossings = vec![0u32; tree.len()];
        for &e in &self.edges {
            match e {
                TreeEdge::Parent(c) => {
                    let (lo, hi) = spans[c.index()];
                    for &l in &leaves[lo as usize..hi as usize] {
                        crossings[l.index()] += 1;
                    }
                }
                TreeEdge::Sensor(l) => crossings[l.index()] += 1,
            }
        }
        for l in tree.leaves_in_order() {
            match crossings[l.index()] {
                1 => {}
                0 => {
                    return Err(TreeError::InvalidCut(format!("leaf {l} is uncovered")));
                }
                k => {
                    return Err(TreeError::InvalidCut(format!(
                        "leaf {l} is covered {k} times (not an antichain)"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The CRUs on the host side (everything not strictly below a cut
    /// `Parent` edge), in pre-order.
    pub fn host_side(&self, tree: &CruTree) -> Vec<CruId> {
        let below = self.below_mask(tree);
        tree.preorder()
            .into_iter()
            .filter(|c| !below[c.index()])
            .collect()
    }

    /// Mask of CRUs strictly below the cut (assigned to satellites).
    pub fn below_mask(&self, tree: &CruTree) -> Vec<bool> {
        let mut below = vec![false; tree.len()];
        for &e in &self.edges {
            if let TreeEdge::Parent(c) = e {
                for x in tree.subtree(c) {
                    below[x.index()] = true;
                }
            }
        }
        below
    }

    /// The all-on-host cut: every leaf covered by its sensor edge.
    pub fn all_on_host(tree: &CruTree) -> Cut {
        Cut::trusted(
            tree,
            tree.leaves_in_order()
                .into_iter()
                .map(TreeEdge::Sensor)
                .collect(),
        )
    }

    /// The *maximal offload* cut under a colouring: cut as high as the
    /// conflicts allow, i.e. every highest non-conflicted edge. This is the
    /// "topmost path" of the paper's §5.4 (fewest CRUs on the host).
    pub fn max_offload(tree: &CruTree, colouring: &Colouring) -> Cut {
        let mut edges = Vec::new();
        let mut stack = vec![tree.root()];
        while let Some(c) = stack.pop() {
            if c != tree.root() && colouring.cuttable(TreeEdge::Parent(c)) {
                edges.push(TreeEdge::Parent(c));
            } else if tree.is_leaf(c) {
                // Conflicted leaf cannot happen (a leaf always has one
                // colour); reaching here means c is the root-leaf.
                edges.push(TreeEdge::Sensor(c));
            } else {
                for &ch in tree.children(c) {
                    stack.push(ch);
                }
            }
        }
        Cut::trusted(tree, edges)
    }
}

/// Enumerates every valid cut for which all edges satisfy `cuttable`,
/// invoking `visit` on each. The number of cuts is exponential in general —
/// intended for the brute-force oracle on small trees.
pub fn for_each_cut(
    tree: &CruTree,
    cuttable: &dyn Fn(TreeEdge) -> bool,
    visit: &mut dyn FnMut(&Cut),
) {
    // Recursive generation: cover(node) chooses either to cut node's parent
    // edge (if allowed) or to descend; leaves may alternatively cut their
    // sensor edge. The root has no parent edge and always descends.
    let mut chosen: Vec<TreeEdge> = Vec::new();
    cover_children(tree, cuttable, tree.root(), &mut chosen, visit);
}

/// Enumerate coverings of all children of `c` (plus finish when done).
fn cover_children(
    tree: &CruTree,
    cuttable: &dyn Fn(TreeEdge) -> bool,
    c: CruId,
    chosen: &mut Vec<TreeEdge>,
    visit: &mut dyn FnMut(&Cut),
) {
    // Treat the root specially: it behaves like an internal node whose
    // children must all be covered; a leaf-root is covered by its sensor
    // edge only.
    if tree.is_leaf(c) {
        let e = TreeEdge::Sensor(c);
        if cuttable(e) {
            chosen.push(e);
            visit(&Cut::trusted(tree, chosen.clone()));
            chosen.pop();
        }
        return;
    }
    let children: Vec<CruId> = tree.children(c).to_vec();
    cover_list(tree, cuttable, &children, 0, chosen, visit);
}

fn cover_list(
    tree: &CruTree,
    cuttable: &dyn Fn(TreeEdge) -> bool,
    list: &[CruId],
    idx: usize,
    chosen: &mut Vec<TreeEdge>,
    visit: &mut dyn FnMut(&Cut),
) {
    if idx == list.len() {
        visit(&Cut::trusted(tree, chosen.clone()));
        return;
    }
    let node = list[idx];
    // Option 1: cut the parent edge of `node`.
    let pe = TreeEdge::Parent(node);
    if cuttable(pe) {
        chosen.push(pe);
        cover_list(tree, cuttable, list, idx + 1, chosen, visit);
        chosen.pop();
    }
    // Option 2: descend into `node`.
    if tree.is_leaf(node) {
        let se = TreeEdge::Sensor(node);
        if cuttable(se) {
            chosen.push(se);
            cover_list(tree, cuttable, list, idx + 1, chosen, visit);
            chosen.pop();
        }
    } else {
        // Cover all of node's children, then continue with the rest of the
        // list: splice the child list in.
        let mut extended: Vec<CruId> = tree.children(node).to_vec();
        extended.extend_from_slice(&list[idx + 1..]);
        cover_list(tree, cuttable, &extended, 0, chosen, visit);
    }
}

/// Counts valid cuts (all edges cuttable).
pub fn count_cuts(tree: &CruTree, cuttable: &dyn Fn(TreeEdge) -> bool) -> u64 {
    let mut n = 0u64;
    for_each_cut(tree, cuttable, &mut |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{cru, fig2_tree};
    use crate::{Colouring, CostModel, SatelliteId, TreeBuilder};
    use hsa_graph::Cost;

    #[test]
    fn validate_accepts_and_rejects() {
        let (t, _m) = fig2_tree();
        // Valid: all sensors.
        Cut::all_on_host(&t).validate(&t).unwrap();
        // Invalid: leaf covered twice.
        let bad = Cut {
            edges: vec![TreeEdge::Parent(cru(4)), TreeEdge::Sensor(cru(9))],
        };
        assert!(bad.validate(&t).is_err());
        // Invalid: uncovered leaves.
        let bad = Cut {
            edges: vec![TreeEdge::Parent(cru(4))],
        };
        assert!(bad.validate(&t).is_err());
        // Invalid: Parent(root).
        let bad = Cut {
            edges: vec![TreeEdge::Parent(t.root())],
        };
        assert!(bad.validate(&t).is_err());
        // Invalid: Sensor(internal).
        let bad = Cut {
            edges: vec![TreeEdge::Sensor(cru(2))],
        };
        assert!(bad.validate(&t).is_err());
    }

    #[test]
    fn host_side_of_extremes() {
        let (t, m) = fig2_tree();
        let col = Colouring::compute(&t, &m).unwrap();
        let all_host = Cut::all_on_host(&t);
        assert_eq!(all_host.host_side(&t).len(), t.len());
        let offload = Cut::max_offload(&t, &col);
        // Host keeps exactly the forced set {CRU1, CRU2, CRU3}.
        let host: Vec<u32> = offload.host_side(&t).iter().map(|c| c.0 + 1).collect();
        assert_eq!(host, vec![1, 2, 3]);
    }

    #[test]
    fn enumeration_counts_chain() {
        // Chain root→a→leaf with one satellite: cuts are {Parent(a)},
        // {Parent(leaf)}, {Sensor(leaf)} → 3.
        let mut b = TreeBuilder::new("r");
        let root = b.root();
        let a = b.add_child(root, "a");
        let leaf = b.add_child(a, "leaf");
        let t = b.build();
        let mut m = CostModel::zeroed(&t, 1);
        m.pin_leaf(leaf, SatelliteId(0), Cost::ZERO);
        assert_eq!(count_cuts(&t, &|_| true), 3);
    }

    #[test]
    fn enumeration_counts_star() {
        // Root with k leaf children: each leaf independently Parent|Sensor
        // → 2^k cuts.
        for k in 1..=4u32 {
            let mut b = TreeBuilder::new("r");
            let root = b.root();
            for i in 0..k {
                b.add_child(root, format!("l{i}"));
            }
            let t = b.build();
            assert_eq!(count_cuts(&t, &|_| true), 1 << k, "k={k}");
        }
    }

    #[test]
    fn enumeration_respects_cuttable_predicate() {
        let (t, m) = fig2_tree();
        let col = Colouring::compute(&t, &m).unwrap();
        let unrestricted = count_cuts(&t, &|_| true);
        let coloured = count_cuts(&t, &|e| col.cuttable(e));
        assert!(coloured < unrestricted);
        // Every enumerated coloured cut validates and uses no conflicted edge.
        for_each_cut(&t, &|e| col.cuttable(e), &mut |cut| {
            cut.validate(&t).unwrap();
            assert!(cut.edges().iter().all(|&e| col.cuttable(e)));
        });
    }

    #[test]
    fn enumerated_cuts_are_unique() {
        let (t, _m) = fig2_tree();
        let mut seen = std::collections::BTreeSet::new();
        for_each_cut(&t, &|_| true, &mut |cut| {
            assert!(seen.insert(cut.clone()), "duplicate {cut:?}");
        });
        assert!(seen.len() > 10);
    }

    #[test]
    fn single_node_tree_has_one_cut() {
        let t = TreeBuilder::new("only").build();
        assert_eq!(count_cuts(&t, &|_| true), 1);
        let mut cuts = Vec::new();
        for_each_cut(&t, &|_| true, &mut |c| cuts.push(c.clone()));
        assert_eq!(cuts[0].edges(), &[TreeEdge::Sensor(CruId(0))]);
    }
}
