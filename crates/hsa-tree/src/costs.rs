//! Per-CRU cost model (§5.3 of the paper).
//!
//! For every CRU `i` the paper assumes two processing-time indicators,
//! obtained by "analytical benchmarking or task profiling":
//!
//! * `h_i` — time to process one frame on the **host**;
//! * `s_i` — time to process one frame on its **correspondent satellite**
//!   (the satellite its subtree's sensors are pinned to);
//!
//! plus communication times:
//!
//! * `c_up(i)` = `c_{i,parent(i)}` — time to ship `i`'s one-frame output
//!   from a satellite up to the host when the tree is cut above `i`;
//! * `c_raw(l)` = `c_{s,l}` — time to ship leaf `l`'s **raw** sensor frames
//!   to the host when even `l` runs on the host;
//!
//! and the *pinning* of every leaf's sensors to a satellite, which the
//! colouring scheme (§5.1) propagates rootwards.

use crate::hash::{Fnv1a, HashCache};
use crate::{CruId, CruTree, SatelliteId, TreeError};
use hsa_graph::Cost;
use serde::{Deserialize, Serialize};

/// Complete cost annotation for a [`CruTree`].
///
/// Invariants (enforced by [`CostModel::validate`]): one entry per CRU in
/// each cost table, and a satellite pinning for exactly the leaves.
///
/// The cost tables are private so that **every** mutation funnels through
/// a setter — that is what lets the lazily-computed
/// [`content_hash`](CostModel::content_hash) cache invalidate itself
/// exactly when the value changes and never serve a stale hash.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CostModel {
    /// `h_i` per CRU: host processing time.
    host_time: Vec<Cost>,
    /// `s_i` per CRU: satellite processing time.
    satellite_time: Vec<Cost>,
    /// `c_up(i)` per CRU: time to transmit `i`'s output to the host
    /// (meaningless for the root, which must keep `Cost::ZERO`).
    comm_up: Vec<Cost>,
    /// For each leaf (by CRU id): pinned satellite, or `None` for internal
    /// nodes.
    pinning: Vec<Option<SatelliteId>>,
    /// `c_raw(l)` per CRU: raw sensor transmission time (zero for internal
    /// nodes).
    comm_raw: Vec<Cost>,
    /// Number of satellites in the platform (ids `0..n_satellites`).
    n_satellites: u32,
    /// Lazily-computed content hash; reset by every setter.
    cache: HashCache,
}

// The hash cache is not part of the value: serialise exactly the fields
// the derive would have emitted before the cache existed, so the wire
// format is unchanged. (The vendored derive has no `#[serde(skip)]`.)
impl Serialize for CostModel {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            (
                "host_time".to_string(),
                Serialize::to_value(&self.host_time),
            ),
            (
                "satellite_time".to_string(),
                Serialize::to_value(&self.satellite_time),
            ),
            ("comm_up".to_string(), Serialize::to_value(&self.comm_up)),
            ("pinning".to_string(), Serialize::to_value(&self.pinning)),
            ("comm_raw".to_string(), Serialize::to_value(&self.comm_raw)),
            (
                "n_satellites".to_string(),
                Serialize::to_value(&self.n_satellites),
            ),
        ])
    }
}

impl Deserialize for CostModel {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::DeError::custom("expected map for struct CostModel"))?;
        Ok(CostModel {
            host_time: Deserialize::from_value(serde::value::field(m, "host_time")?)?,
            satellite_time: Deserialize::from_value(serde::value::field(m, "satellite_time")?)?,
            comm_up: Deserialize::from_value(serde::value::field(m, "comm_up")?)?,
            pinning: Deserialize::from_value(serde::value::field(m, "pinning")?)?,
            comm_raw: Deserialize::from_value(serde::value::field(m, "comm_raw")?)?,
            n_satellites: Deserialize::from_value(serde::value::field(m, "n_satellites")?)?,
            cache: HashCache::default(),
        })
    }
}

impl CostModel {
    /// Creates a zeroed cost model shaped for `tree`, with `n_satellites`
    /// satellites; pinnings start unset and must be provided per leaf.
    pub fn zeroed(tree: &CruTree, n_satellites: u32) -> Self {
        let n = tree.len();
        CostModel {
            host_time: vec![Cost::ZERO; n],
            satellite_time: vec![Cost::ZERO; n],
            comm_up: vec![Cost::ZERO; n],
            pinning: vec![None; n],
            comm_raw: vec![Cost::ZERO; n],
            n_satellites,
            cache: HashCache::default(),
        }
    }

    /// The FNV-1a content hash of every cost table and the platform size.
    /// Computed lazily and cached; every setter invalidates the cache, so
    /// a warm model answers in one atomic load.
    pub fn content_hash(&self) -> u64 {
        self.cache.get_or_compute(|| {
            let mut h = Fnv1a::new();
            h.write_u32(self.n_satellites);
            h.write_u64(self.host_time.len() as u64);
            for &c in &self.host_time {
                h.write_u64(c.ticks());
            }
            for &c in &self.satellite_time {
                h.write_u64(c.ticks());
            }
            for &c in &self.comm_up {
                h.write_u64(c.ticks());
            }
            for &c in &self.comm_raw {
                h.write_u64(c.ticks());
            }
            for &p in &self.pinning {
                // `sat + 1` with 0 for "unpinned" keeps the stream dense.
                h.write_u32(p.map_or(0, |s| s.0 + 1));
            }
            h.finish()
        })
    }

    /// Sets `h_i`.
    pub fn set_host_time(&mut self, c: CruId, v: Cost) -> &mut Self {
        self.cache.invalidate();
        self.host_time[c.index()] = v;
        self
    }

    /// Sets `s_i`.
    pub fn set_satellite_time(&mut self, c: CruId, v: Cost) -> &mut Self {
        self.cache.invalidate();
        self.satellite_time[c.index()] = v;
        self
    }

    /// Sets `c_up(i)`.
    pub fn set_comm_up(&mut self, c: CruId, v: Cost) -> &mut Self {
        self.cache.invalidate();
        self.comm_up[c.index()] = v;
        self
    }

    /// Sets `c_raw(l)` alone (pinning untouched).
    pub fn set_comm_raw(&mut self, c: CruId, v: Cost) -> &mut Self {
        self.cache.invalidate();
        self.comm_raw[c.index()] = v;
        self
    }

    /// Sets or clears a node's sensor pinning directly. Prefer
    /// [`CostModel::pin_leaf`] when also setting the raw-transfer cost;
    /// this is the escape hatch for perturbations (sensor churn, pin
    /// migration) and deliberately-invalid test fixtures.
    pub fn set_pinning(&mut self, c: CruId, sat: Option<SatelliteId>) -> &mut Self {
        self.cache.invalidate();
        self.pinning[c.index()] = sat;
        self
    }

    /// Resizes the platform (satellite ids become `0..n`). Existing
    /// pinnings are left untouched; [`CostModel::validate`] will reject
    /// the model if any leaf now points past the platform.
    pub fn set_n_satellites(&mut self, n: u32) -> &mut Self {
        self.cache.invalidate();
        self.n_satellites = n;
        self
    }

    /// Pins a leaf's sensors to a satellite and sets its raw-transfer cost.
    pub fn pin_leaf(&mut self, leaf: CruId, sat: SatelliteId, c_raw: Cost) -> &mut Self {
        self.cache.invalidate();
        self.pinning[leaf.index()] = Some(sat);
        self.comm_raw[leaf.index()] = c_raw;
        self
    }

    /// Number of satellites in the platform (ids `0..n_satellites`).
    #[inline]
    pub fn n_satellites(&self) -> u32 {
        self.n_satellites
    }

    /// All `h_i`, indexed by CRU id.
    #[inline]
    pub fn host_times(&self) -> &[Cost] {
        &self.host_time
    }

    /// All `s_i`, indexed by CRU id.
    #[inline]
    pub fn satellite_times(&self) -> &[Cost] {
        &self.satellite_time
    }

    /// All `c_up(i)`, indexed by CRU id.
    #[inline]
    pub fn comm_ups(&self) -> &[Cost] {
        &self.comm_up
    }

    /// All `c_raw(l)`, indexed by CRU id.
    #[inline]
    pub fn comm_raws(&self) -> &[Cost] {
        &self.comm_raw
    }

    /// All pinnings, indexed by CRU id (`None` for internal nodes).
    #[inline]
    pub fn pinnings(&self) -> &[Option<SatelliteId>] {
        &self.pinning
    }

    /// `h_i` accessor.
    #[inline]
    pub fn h(&self, c: CruId) -> Cost {
        self.host_time[c.index()]
    }

    /// `s_i` accessor.
    #[inline]
    pub fn s(&self, c: CruId) -> Cost {
        self.satellite_time[c.index()]
    }

    /// `c_up(i)` accessor.
    #[inline]
    pub fn c_up(&self, c: CruId) -> Cost {
        self.comm_up[c.index()]
    }

    /// `c_raw(l)` accessor.
    #[inline]
    pub fn c_raw(&self, c: CruId) -> Cost {
        self.comm_raw[c.index()]
    }

    /// The satellite a leaf is pinned to.
    pub fn pinned_satellite(&self, leaf: CruId) -> Option<SatelliteId> {
        self.pinning.get(leaf.index()).copied().flatten()
    }

    /// Total `h` over all CRUs — the S weight of the all-on-host partition.
    pub fn total_host_time(&self) -> Cost {
        self.host_time.iter().copied().sum()
    }

    /// Checks that this model covers `tree`: table lengths match, every
    /// leaf is pinned to an existing satellite, no internal node is pinned,
    /// and the root has no uplink cost.
    pub fn validate(&self, tree: &CruTree) -> Result<(), TreeError> {
        let n = tree.len();
        for (name, len) in [
            ("host_time", self.host_time.len()),
            ("satellite_time", self.satellite_time.len()),
            ("comm_up", self.comm_up.len()),
            ("pinning", self.pinning.len()),
            ("comm_raw", self.comm_raw.len()),
        ] {
            if len != n {
                return Err(TreeError::CostModelMismatch(format!(
                    "{name} has {len} entries for a tree of {n} CRUs"
                )));
            }
        }
        for c in tree.preorder() {
            if tree.is_leaf(c) {
                match self.pinning[c.index()] {
                    None => return Err(TreeError::UnpinnedLeaf(c)),
                    Some(sat) if sat.0 >= self.n_satellites => {
                        return Err(TreeError::CostModelMismatch(format!(
                            "{c} pinned to {sat} but only {} satellites exist",
                            self.n_satellites
                        )));
                    }
                    Some(_) => {}
                }
            } else if self.pinning[c.index()].is_some() {
                return Err(TreeError::CostModelMismatch(format!(
                    "internal node {c} must not carry a sensor pinning"
                )));
            }
        }
        if self.comm_up[tree.root().index()] != Cost::ZERO {
            return Err(TreeError::CostModelMismatch(
                "root has no parent, its comm_up must be zero".into(),
            ));
        }
        Ok(())
    }

    /// Sum of `s_i` over the subtree of `c` — used by the β labelling.
    pub fn subtree_satellite_time(&self, tree: &CruTree, c: CruId) -> Cost {
        tree.subtree(c).into_iter().map(|x| self.s(x)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeBuilder;

    fn c(v: u64) -> Cost {
        Cost::new(v)
    }

    fn tree_and_costs() -> (CruTree, CostModel) {
        let mut b = TreeBuilder::new("root");
        let root = b.root();
        let a = b.add_child(root, "a");
        let l1 = b.add_child(a, "l1");
        let l2 = b.add_child(a, "l2");
        let t = b.build();
        let mut m = CostModel::zeroed(&t, 2);
        m.set_host_time(root, c(10))
            .set_host_time(a, c(5))
            .set_host_time(l1, c(3))
            .set_host_time(l2, c(4));
        m.set_satellite_time(a, c(8))
            .set_satellite_time(l1, c(6))
            .set_satellite_time(l2, c(7));
        m.set_comm_up(a, c(2))
            .set_comm_up(l1, c(1))
            .set_comm_up(l2, c(1));
        m.pin_leaf(l1, SatelliteId(0), c(9));
        m.pin_leaf(l2, SatelliteId(1), c(9));
        (t, m)
    }

    #[test]
    fn accessors_and_validation() {
        let (t, m) = tree_and_costs();
        m.validate(&t).unwrap();
        assert_eq!(m.h(CruId(0)), c(10));
        assert_eq!(m.s(CruId(2)), c(6));
        assert_eq!(m.c_up(CruId(1)), c(2));
        assert_eq!(m.c_raw(CruId(2)), c(9));
        assert_eq!(m.pinned_satellite(CruId(2)), Some(SatelliteId(0)));
        assert_eq!(m.pinned_satellite(CruId(1)), None);
        assert_eq!(m.total_host_time(), c(22));
    }

    #[test]
    fn subtree_satellite_time_sums() {
        let (t, m) = tree_and_costs();
        assert_eq!(m.subtree_satellite_time(&t, CruId(1)), c(8 + 6 + 7));
        assert_eq!(m.subtree_satellite_time(&t, CruId(2)), c(6));
    }

    #[test]
    fn unpinned_leaf_is_rejected() {
        let (t, mut m) = tree_and_costs();
        m.set_pinning(CruId(2), None);
        assert_eq!(m.validate(&t), Err(TreeError::UnpinnedLeaf(CruId(2))));
    }

    #[test]
    fn pinned_internal_node_is_rejected() {
        let (t, mut m) = tree_and_costs();
        m.set_pinning(CruId(1), Some(SatelliteId(0)));
        assert!(m.validate(&t).is_err());
    }

    #[test]
    fn pinning_to_missing_satellite_is_rejected() {
        let (t, mut m) = tree_and_costs();
        m.set_pinning(CruId(2), Some(SatelliteId(99)));
        assert!(m.validate(&t).is_err());
    }

    #[test]
    fn nonzero_root_uplink_is_rejected() {
        let (t, mut m) = tree_and_costs();
        m.set_comm_up(CruId(0), c(1));
        assert!(m.validate(&t).is_err());
    }

    #[test]
    fn content_hash_is_cached_and_invalidated_by_every_setter() {
        type Mutation = Box<dyn Fn(&mut CostModel)>;
        let (_t, m) = tree_and_costs();
        let h0 = m.content_hash();
        assert_eq!(m.content_hash(), h0, "cached hash must be stable");
        // Each setter must change the hash (values chosen to differ).
        let mutations: Vec<Mutation> = vec![
            Box::new(|m| {
                m.set_host_time(CruId(2), c(99));
            }),
            Box::new(|m| {
                m.set_satellite_time(CruId(2), c(99));
            }),
            Box::new(|m| {
                m.set_comm_up(CruId(2), c(99));
            }),
            Box::new(|m| {
                m.set_comm_raw(CruId(2), c(99));
            }),
            Box::new(|m| {
                m.set_pinning(CruId(2), Some(SatelliteId(1)));
            }),
            Box::new(|m| {
                m.set_n_satellites(7);
            }),
            Box::new(|m| {
                m.pin_leaf(CruId(3), SatelliteId(0), c(42));
            }),
        ];
        for (i, mutate) in mutations.iter().enumerate() {
            let (_t, mut fresh) = tree_and_costs();
            let before = fresh.content_hash();
            mutate(&mut fresh);
            assert_ne!(
                fresh.content_hash(),
                before,
                "setter #{i} must invalidate and change the hash"
            );
        }
        // Equal content always re-hashes equal, cached or not.
        let (_t, other) = tree_and_costs();
        assert_eq!(other.content_hash(), h0);
    }

    #[test]
    fn cost_fields_do_not_alias_across_tables() {
        // host_time[i] and satellite_time[i] feed distinct hash positions:
        // swapping a value between tables must change the hash.
        let (_t, mut a) = tree_and_costs();
        let (_t, mut b) = tree_and_costs();
        a.set_host_time(CruId(3), c(77));
        b.set_satellite_time(CruId(3), c(77));
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn wrong_table_length_is_rejected() {
        let (t, mut m) = tree_and_costs();
        m.host_time.pop();
        assert!(m.validate(&t).is_err());
    }
}
