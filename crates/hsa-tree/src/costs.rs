//! Per-CRU cost model (§5.3 of the paper).
//!
//! For every CRU `i` the paper assumes two processing-time indicators,
//! obtained by "analytical benchmarking or task profiling":
//!
//! * `h_i` — time to process one frame on the **host**;
//! * `s_i` — time to process one frame on its **correspondent satellite**
//!   (the satellite its subtree's sensors are pinned to);
//!
//! plus communication times:
//!
//! * `c_up(i)` = `c_{i,parent(i)}` — time to ship `i`'s one-frame output
//!   from a satellite up to the host when the tree is cut above `i`;
//! * `c_raw(l)` = `c_{s,l}` — time to ship leaf `l`'s **raw** sensor frames
//!   to the host when even `l` runs on the host;
//!
//! and the *pinning* of every leaf's sensors to a satellite, which the
//! colouring scheme (§5.1) propagates rootwards.

use crate::{CruId, CruTree, SatelliteId, TreeError};
use hsa_graph::Cost;
use serde::{Deserialize, Serialize};

/// Complete cost annotation for a [`CruTree`].
///
/// Invariants (enforced by [`CostModel::validate`]): one entry per CRU in
/// each cost table, and a satellite pinning for exactly the leaves.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq, Hash)]
pub struct CostModel {
    /// `h_i` per CRU: host processing time.
    pub host_time: Vec<Cost>,
    /// `s_i` per CRU: satellite processing time.
    pub satellite_time: Vec<Cost>,
    /// `c_up(i)` per CRU: time to transmit `i`'s output to the host
    /// (meaningless for the root, which must keep `Cost::ZERO`).
    pub comm_up: Vec<Cost>,
    /// For each leaf (by CRU id): pinned satellite, or `None` for internal
    /// nodes.
    pub pinning: Vec<Option<SatelliteId>>,
    /// `c_raw(l)` per CRU: raw sensor transmission time (zero for internal
    /// nodes).
    pub comm_raw: Vec<Cost>,
    /// Number of satellites in the platform (ids `0..n_satellites`).
    pub n_satellites: u32,
}

impl CostModel {
    /// Creates a zeroed cost model shaped for `tree`, with `n_satellites`
    /// satellites; pinnings start unset and must be provided per leaf.
    pub fn zeroed(tree: &CruTree, n_satellites: u32) -> Self {
        let n = tree.len();
        CostModel {
            host_time: vec![Cost::ZERO; n],
            satellite_time: vec![Cost::ZERO; n],
            comm_up: vec![Cost::ZERO; n],
            pinning: vec![None; n],
            comm_raw: vec![Cost::ZERO; n],
            n_satellites,
        }
    }

    /// Sets `h_i`.
    pub fn set_host_time(&mut self, c: CruId, v: Cost) -> &mut Self {
        self.host_time[c.index()] = v;
        self
    }

    /// Sets `s_i`.
    pub fn set_satellite_time(&mut self, c: CruId, v: Cost) -> &mut Self {
        self.satellite_time[c.index()] = v;
        self
    }

    /// Sets `c_up(i)`.
    pub fn set_comm_up(&mut self, c: CruId, v: Cost) -> &mut Self {
        self.comm_up[c.index()] = v;
        self
    }

    /// Pins a leaf's sensors to a satellite and sets its raw-transfer cost.
    pub fn pin_leaf(&mut self, leaf: CruId, sat: SatelliteId, c_raw: Cost) -> &mut Self {
        self.pinning[leaf.index()] = Some(sat);
        self.comm_raw[leaf.index()] = c_raw;
        self
    }

    /// `h_i` accessor.
    #[inline]
    pub fn h(&self, c: CruId) -> Cost {
        self.host_time[c.index()]
    }

    /// `s_i` accessor.
    #[inline]
    pub fn s(&self, c: CruId) -> Cost {
        self.satellite_time[c.index()]
    }

    /// `c_up(i)` accessor.
    #[inline]
    pub fn c_up(&self, c: CruId) -> Cost {
        self.comm_up[c.index()]
    }

    /// `c_raw(l)` accessor.
    #[inline]
    pub fn c_raw(&self, c: CruId) -> Cost {
        self.comm_raw[c.index()]
    }

    /// The satellite a leaf is pinned to.
    pub fn pinned_satellite(&self, leaf: CruId) -> Option<SatelliteId> {
        self.pinning.get(leaf.index()).copied().flatten()
    }

    /// Total `h` over all CRUs — the S weight of the all-on-host partition.
    pub fn total_host_time(&self) -> Cost {
        self.host_time.iter().copied().sum()
    }

    /// Checks that this model covers `tree`: table lengths match, every
    /// leaf is pinned to an existing satellite, no internal node is pinned,
    /// and the root has no uplink cost.
    pub fn validate(&self, tree: &CruTree) -> Result<(), TreeError> {
        let n = tree.len();
        for (name, len) in [
            ("host_time", self.host_time.len()),
            ("satellite_time", self.satellite_time.len()),
            ("comm_up", self.comm_up.len()),
            ("pinning", self.pinning.len()),
            ("comm_raw", self.comm_raw.len()),
        ] {
            if len != n {
                return Err(TreeError::CostModelMismatch(format!(
                    "{name} has {len} entries for a tree of {n} CRUs"
                )));
            }
        }
        for c in tree.preorder() {
            if tree.is_leaf(c) {
                match self.pinning[c.index()] {
                    None => return Err(TreeError::UnpinnedLeaf(c)),
                    Some(sat) if sat.0 >= self.n_satellites => {
                        return Err(TreeError::CostModelMismatch(format!(
                            "{c} pinned to {sat} but only {} satellites exist",
                            self.n_satellites
                        )));
                    }
                    Some(_) => {}
                }
            } else if self.pinning[c.index()].is_some() {
                return Err(TreeError::CostModelMismatch(format!(
                    "internal node {c} must not carry a sensor pinning"
                )));
            }
        }
        if self.comm_up[tree.root().index()] != Cost::ZERO {
            return Err(TreeError::CostModelMismatch(
                "root has no parent, its comm_up must be zero".into(),
            ));
        }
        Ok(())
    }

    /// Sum of `s_i` over the subtree of `c` — used by the β labelling.
    pub fn subtree_satellite_time(&self, tree: &CruTree, c: CruId) -> Cost {
        tree.subtree(c).into_iter().map(|x| self.s(x)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeBuilder;

    fn c(v: u64) -> Cost {
        Cost::new(v)
    }

    fn tree_and_costs() -> (CruTree, CostModel) {
        let mut b = TreeBuilder::new("root");
        let root = b.root();
        let a = b.add_child(root, "a");
        let l1 = b.add_child(a, "l1");
        let l2 = b.add_child(a, "l2");
        let t = b.build();
        let mut m = CostModel::zeroed(&t, 2);
        m.set_host_time(root, c(10))
            .set_host_time(a, c(5))
            .set_host_time(l1, c(3))
            .set_host_time(l2, c(4));
        m.set_satellite_time(a, c(8))
            .set_satellite_time(l1, c(6))
            .set_satellite_time(l2, c(7));
        m.set_comm_up(a, c(2))
            .set_comm_up(l1, c(1))
            .set_comm_up(l2, c(1));
        m.pin_leaf(l1, SatelliteId(0), c(9));
        m.pin_leaf(l2, SatelliteId(1), c(9));
        (t, m)
    }

    #[test]
    fn accessors_and_validation() {
        let (t, m) = tree_and_costs();
        m.validate(&t).unwrap();
        assert_eq!(m.h(CruId(0)), c(10));
        assert_eq!(m.s(CruId(2)), c(6));
        assert_eq!(m.c_up(CruId(1)), c(2));
        assert_eq!(m.c_raw(CruId(2)), c(9));
        assert_eq!(m.pinned_satellite(CruId(2)), Some(SatelliteId(0)));
        assert_eq!(m.pinned_satellite(CruId(1)), None);
        assert_eq!(m.total_host_time(), c(22));
    }

    #[test]
    fn subtree_satellite_time_sums() {
        let (t, m) = tree_and_costs();
        assert_eq!(m.subtree_satellite_time(&t, CruId(1)), c(8 + 6 + 7));
        assert_eq!(m.subtree_satellite_time(&t, CruId(2)), c(6));
    }

    #[test]
    fn unpinned_leaf_is_rejected() {
        let (t, mut m) = tree_and_costs();
        m.pinning[2] = None;
        assert_eq!(m.validate(&t), Err(TreeError::UnpinnedLeaf(CruId(2))));
    }

    #[test]
    fn pinned_internal_node_is_rejected() {
        let (t, mut m) = tree_and_costs();
        m.pinning[1] = Some(SatelliteId(0));
        assert!(m.validate(&t).is_err());
    }

    #[test]
    fn pinning_to_missing_satellite_is_rejected() {
        let (t, mut m) = tree_and_costs();
        m.pinning[2] = Some(SatelliteId(99));
        assert!(m.validate(&t).is_err());
    }

    #[test]
    fn nonzero_root_uplink_is_rejected() {
        let (t, mut m) = tree_and_costs();
        m.comm_up[0] = c(1);
        assert!(m.validate(&t).is_err());
    }

    #[test]
    fn wrong_table_length_is_rejected() {
        let (t, mut m) = tree_and_costs();
        m.host_time.pop();
        assert!(m.validate(&t).is_err());
    }
}
