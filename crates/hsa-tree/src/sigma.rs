//! The σ (host execution time) labelling of the closed CRU tree — the
//! paper's Figure 8 / §5.3 "sum weight" construction.
//!
//! Rule (quoted from the paper, de-garbled): give every edge an initial
//! weight 0; traverse the tree in pre-order; when visiting node `j` with
//! incoming edge weight `w_in`, give the edge towards `j`'s **leftmost
//! child** the weight `w_in + h_j`. The leftmost edge leaving the root gets
//! `h_root` (the root has no incoming edge, `w_in = 0`). A leaf's only
//! downward edge is its virtual sensor edge, which therefore receives
//! `w_in + h_leaf`.
//!
//! **Why it works.** `h_j` is charged on every edge of the maximal
//! *leftmost-descendant chain* starting at `j`. A valid cut (an antichain
//! covering every leaf exactly once) crosses that chain exactly once iff
//! `j` ends up on the host side, so summing σ over any valid cut counts
//! exactly the host-side `h` values — the S weight of the partition. The
//! property test in this module checks that equality against the direct
//! oracle for every cut of random trees.

use crate::{CostModel, CruId, CruTree, TreeEdge, TreeError};
use hsa_graph::Cost;

/// The σ label of every closed-tree edge.
#[derive(Clone, Debug)]
pub struct SigmaLabels {
    /// σ of `Parent(c)`, indexed by `c` (root entry unused, zero).
    pub parent_edge: Vec<Cost>,
    /// σ of `Sensor(l)`, indexed by `l` (zero for internal nodes).
    pub sensor_edge: Vec<Cost>,
}

impl SigmaLabels {
    /// Computes the Figure 8 labelling in one pre-order pass.
    pub fn compute(tree: &CruTree, costs: &CostModel) -> Result<SigmaLabels, TreeError> {
        costs.validate(tree)?;
        let n = tree.len();
        let mut parent_edge = vec![Cost::ZERO; n];
        let mut sensor_edge = vec![Cost::ZERO; n];
        // w_in per node: the σ already assigned to the edge entering it.
        let mut w_in = vec![Cost::ZERO; n];
        for j in tree.preorder() {
            let down = w_in[j.index()] + costs.h(j);
            if tree.is_leaf(j) {
                sensor_edge[j.index()] = down;
            } else {
                let leftmost = tree.children(j)[0];
                parent_edge[leftmost.index()] = down;
                w_in[leftmost.index()] = down;
                // Non-leftmost children keep σ = 0 and w_in = 0.
            }
        }
        Ok(SigmaLabels {
            parent_edge,
            sensor_edge,
        })
    }

    /// σ of a closed-tree edge.
    pub fn sigma(&self, e: TreeEdge) -> Cost {
        match e {
            TreeEdge::Parent(c) => self.parent_edge[c.index()],
            TreeEdge::Sensor(l) => self.sensor_edge[l.index()],
        }
    }
}

/// The *oracle* the labelling must agree with: the host-side processing
/// time of a cut, computed directly from the tree.
///
/// Host side = every CRU **not** strictly below a cut edge. `Sensor(l)` cuts
/// keep `l` itself on the host.
pub fn host_time_of_cut(tree: &CruTree, costs: &CostModel, cut: &[TreeEdge]) -> Cost {
    let mut below = vec![false; tree.len()];
    for e in cut {
        if let TreeEdge::Parent(c) = e {
            for x in tree.subtree(*c) {
                below[x.index()] = true;
            }
        }
    }
    (0..tree.len() as u32)
        .map(CruId)
        .filter(|c| !below[c.index()])
        .map(|c| costs.h(c))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SatelliteId, TreeBuilder};

    fn c(v: u64) -> Cost {
        Cost::new(v)
    }

    /// The canonical reconstruction of the paper's Figure 2/8 tree (see
    /// `figures.rs` for the full story). Node ids follow the paper.
    fn paperish() -> (CruTree, CostModel) {
        crate::figures::fig2_tree()
    }

    #[test]
    fn figure8_labels() {
        // The labels the paper prints in Figure 8: h1+h2 on <CRU2,CRU4>,
        // h1+h2+h4+h9 on CRU9's sensor edge, h10 on CRU10's, h3+h6+h13 on
        // CRU13's, h7/h8 on CRU7/CRU8's.
        let (t, m) = paperish();
        let sig = SigmaLabels::compute(&t, &m).unwrap();
        use crate::figures::cru;
        let h = |i: u32| m.h(cru(i));

        // Root's leftmost edge <CRU1,CRU2> = h1.
        assert_eq!(sig.sigma(TreeEdge::Parent(cru(2))), h(1));
        // <CRU2,CRU4> = h1 + h2.
        assert_eq!(sig.sigma(TreeEdge::Parent(cru(4))), h(1) + h(2));
        // <CRU1,CRU3> is not leftmost → 0.
        assert_eq!(sig.sigma(TreeEdge::Parent(cru(3))), Cost::ZERO);
        // <CRU3,CRU6> = h3 (leftmost under CRU3, whose incoming σ is 0).
        assert_eq!(sig.sigma(TreeEdge::Parent(cru(6))), h(3));
        // CRU9 sensor edge = h1+h2+h4+h9.
        assert_eq!(
            sig.sigma(TreeEdge::Sensor(cru(9))),
            h(1) + h(2) + h(4) + h(9)
        );
        // CRU10 sensor edge = h10 (non-leftmost child of CRU4).
        assert_eq!(sig.sigma(TreeEdge::Sensor(cru(10))), h(10));
        // CRU13 sensor edge = h3+h6+h13.
        assert_eq!(sig.sigma(TreeEdge::Sensor(cru(13))), h(3) + h(6) + h(13));
        // CRU7, CRU8 sensor edges = h7, h8.
        assert_eq!(sig.sigma(TreeEdge::Sensor(cru(7))), h(7));
        assert_eq!(sig.sigma(TreeEdge::Sensor(cru(8))), h(8));
    }

    #[test]
    fn topmost_cut_counts_only_the_root() {
        // Cut both edges under the root: host = {root}.
        let mut b = TreeBuilder::new("r");
        let root = b.root();
        let a = b.add_child(root, "a");
        let d = b.add_child(root, "d");
        let t = b.build();
        let mut m = CostModel::zeroed(&t, 2);
        m.set_host_time(root, c(11))
            .set_host_time(a, c(5))
            .set_host_time(d, c(7));
        m.pin_leaf(a, SatelliteId(0), Cost::ZERO);
        m.pin_leaf(d, SatelliteId(1), Cost::ZERO);
        let sig = SigmaLabels::compute(&t, &m).unwrap();
        let cut = [TreeEdge::Parent(a), TreeEdge::Parent(d)];
        let sum: Cost = cut.iter().map(|&e| sig.sigma(e)).sum();
        assert_eq!(sum, c(11));
        assert_eq!(host_time_of_cut(&t, &m, &cut), c(11));
    }

    #[test]
    fn bottom_cut_counts_everything() {
        // Cut at the sensor edges: every CRU on the host.
        let mut b = TreeBuilder::new("r");
        let root = b.root();
        let a = b.add_child(root, "a");
        let d = b.add_child(root, "d");
        let t = b.build();
        let mut m = CostModel::zeroed(&t, 2);
        m.set_host_time(root, c(11))
            .set_host_time(a, c(5))
            .set_host_time(d, c(7));
        m.pin_leaf(a, SatelliteId(0), Cost::ZERO);
        m.pin_leaf(d, SatelliteId(1), Cost::ZERO);
        let sig = SigmaLabels::compute(&t, &m).unwrap();
        let cut = [TreeEdge::Sensor(a), TreeEdge::Sensor(d)];
        let sum: Cost = cut.iter().map(|&e| sig.sigma(e)).sum();
        assert_eq!(sum, c(11 + 5 + 7));
        assert_eq!(host_time_of_cut(&t, &m, &cut), c(23));
    }

    #[test]
    fn mixed_cut_matches_oracle() {
        let (t, m) = paperish();
        let sig = SigmaLabels::compute(&t, &m).unwrap();
        use crate::figures::cru;
        // Cut: subtree(CRU4) to a satellite; CRU5's and CRU6's subtrees to
        // satellites; CRU7 offloaded; CRU8 kept on host.
        let cut = [
            TreeEdge::Parent(cru(4)),
            TreeEdge::Parent(cru(5)),
            TreeEdge::Parent(cru(6)),
            TreeEdge::Parent(cru(7)),
            TreeEdge::Sensor(cru(8)),
        ];
        let sum: Cost = cut.iter().map(|&e| sig.sigma(e)).sum();
        assert_eq!(sum, host_time_of_cut(&t, &m, &cut));
    }

    #[test]
    fn single_node_tree_sensor_cut() {
        let t = TreeBuilder::new("only").build();
        let mut m = CostModel::zeroed(&t, 1);
        m.set_host_time(CruId(0), c(9));
        m.pin_leaf(CruId(0), SatelliteId(0), Cost::ZERO);
        let sig = SigmaLabels::compute(&t, &m).unwrap();
        assert_eq!(sig.sigma(TreeEdge::Sensor(CruId(0))), c(9));
        assert_eq!(
            host_time_of_cut(&t, &m, &[TreeEdge::Sensor(CruId(0))]),
            c(9)
        );
    }
}
