//! Property tests: the σ/β labellings must agree with the direct oracles on
//! *every* cut of random costed trees — this is the load-bearing invariant
//! behind the paper's assignment-graph construction (§5.3).

use hsa_graph::Cost;
use hsa_tree::{
    for_each_cut, host_time_of_cut, satellite_loads_of_cut, BetaLabels, Colouring, CostModel,
    CruId, CruNode, CruTree, SatelliteId, SigmaLabels, TreeEdge,
};
use proptest::prelude::*;

/// A reproducible random instance description.
#[derive(Clone, Debug)]
struct Instance {
    tree: CruTree,
    costs: CostModel,
}

/// Strategy: random ordered tree of `n` nodes (parent of node i is a random
/// j < i, children ordered by id), `k` satellites, random small costs.
fn arb_instance(max_nodes: usize, max_sats: u32) -> impl Strategy<Value = Instance> {
    (2usize..=max_nodes, 1u32..=max_sats).prop_flat_map(move |(n, k)| {
        let parents = proptest::collection::vec(0usize..n, n - 1);
        let costs = proptest::collection::vec((0u64..40, 0u64..40, 0u64..20, 0u64..20), n);
        let sats = proptest::collection::vec(0u32..k, n);
        (parents, costs, sats).prop_map(move |(parents, costvec, sats)| {
            // parent of node i (1-based) = parents[i-1] % i  → valid DAG-tree.
            let mut nodes: Vec<CruNode> = (0..n)
                .map(|i| CruNode {
                    parent: None,
                    children: Vec::new(),
                    name: format!("n{i}"),
                })
                .collect();
            for i in 1..n {
                let p = parents[i - 1] % i;
                nodes[i].parent = Some(CruId(p as u32));
                let child = CruId(i as u32);
                nodes[p].children.push(child);
            }
            let tree = CruTree::from_parts(nodes, CruId(0)).expect("construction is valid");
            let mut m = CostModel::zeroed(&tree, k);
            for i in 0..n {
                let id = CruId(i as u32);
                let (h, s, cu, cr) = costvec[i];
                m.set_host_time(id, Cost::new(h));
                m.set_satellite_time(id, Cost::new(s));
                if i != 0 {
                    m.set_comm_up(id, Cost::new(cu));
                }
                if tree.is_leaf(id) {
                    m.pin_leaf(id, SatelliteId(sats[i] % k), Cost::new(cr));
                }
            }
            Instance { tree, costs: m }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Σ σ over any valid cut == direct host-side h sum.
    #[test]
    fn sigma_labelling_equals_host_oracle(inst in arb_instance(10, 4)) {
        let sig = SigmaLabels::compute(&inst.tree, &inst.costs).unwrap();
        let mut checked = 0u32;
        for_each_cut(&inst.tree, &|_| true, &mut |cut| {
            let labelled: Cost = cut.edges().iter().map(|&e| sig.sigma(e)).sum();
            let oracle = host_time_of_cut(&inst.tree, &inst.costs, cut.edges());
            assert_eq!(labelled, oracle, "cut {:?}", cut.edges());
            checked += 1;
        });
        prop_assert!(checked >= 1);
    }

    /// Per-colour Σ β over any valid *coloured* cut == direct satellite loads.
    #[test]
    fn beta_labelling_equals_satellite_oracle(inst in arb_instance(10, 4)) {
        let col = Colouring::compute(&inst.tree, &inst.costs).unwrap();
        let bet = BetaLabels::compute(&inst.tree, &inst.costs).unwrap();
        let colour_of = |e: TreeEdge| col.edge_colour(e).satellite();
        for_each_cut(&inst.tree, &|e| col.cuttable(e), &mut |cut| {
            // Labelled per-colour sums.
            let mut labelled = vec![Cost::ZERO; inst.costs.n_satellites() as usize];
            for &e in cut.edges() {
                let sat = colour_of(e).expect("cuttable edges have a colour");
                labelled[sat.index()] += bet.beta(e);
            }
            let oracle = satellite_loads_of_cut(&inst.tree, &inst.costs, colour_of, cut.edges());
            assert_eq!(labelled, oracle, "cut {:?}", cut.edges());
        });
    }

    /// Cut enumeration produces exactly the cuts that validate.
    #[test]
    fn enumerated_cuts_validate_and_are_unique(inst in arb_instance(9, 3)) {
        let mut seen = std::collections::BTreeSet::new();
        for_each_cut(&inst.tree, &|_| true, &mut |cut| {
            cut.validate(&inst.tree).unwrap();
            assert!(seen.insert(cut.clone()));
        });
        // At least the all-on-host cut exists.
        prop_assert!(!seen.is_empty());
    }

    /// The max-offload cut is valid, uses only cuttable edges, and its host
    /// side is exactly the forced set.
    #[test]
    fn max_offload_cut_is_minimal_host(inst in arb_instance(12, 4)) {
        let col = Colouring::compute(&inst.tree, &inst.costs).unwrap();
        let cut = hsa_tree::Cut::max_offload(&inst.tree, &col);
        cut.validate(&inst.tree).unwrap();
        prop_assert!(cut.edges().iter().all(|&e| col.cuttable(e)));
        let host = cut.host_side(&inst.tree);
        prop_assert_eq!(host, col.host_forced.clone());
    }

    /// Colour bands partition the leaves and preserve order.
    #[test]
    fn bands_partition_leaves(inst in arb_instance(12, 4)) {
        let col = Colouring::compute(&inst.tree, &inst.costs).unwrap();
        let mut at = 0u32;
        for b in &col.bands {
            prop_assert_eq!(b.lo, at);
            prop_assert!(b.hi > b.lo);
            for i in b.lo..b.hi {
                prop_assert_eq!(col.leaf_colours[i as usize], b.satellite);
            }
            at = b.hi;
        }
        prop_assert_eq!(at as usize, col.leaf_colours.len());
    }

    /// serde round-trip of tree + costs.
    #[test]
    fn serde_round_trip(inst in arb_instance(10, 3)) {
        let json = serde_json::to_string(&(&inst.tree, &inst.costs)).unwrap();
        let (t2, m2): (CruTree, CostModel) = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&inst.tree, &t2);
        prop_assert_eq!(&inst.costs, &m2);
        t2.validate().unwrap();
        m2.validate(&t2).unwrap();
    }
}
