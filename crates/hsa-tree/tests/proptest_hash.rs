//! Property tests for the cached structural hashes: after *any* sequence of
//! delta mutations — and after rolling the mutations back — the cached
//! [`CostModel::content_hash`] / [`CruTree::content_hash`] must equal a
//! from-scratch recomputation on a cache-free twin. A stale cache here would
//! silently alias distinct instances in the engine's identity cache, so this
//! suite is the coherence contract behind `instance_hash`.
//!
//! Green under `PROPTEST_SEED` 1–3 (and the default stream).

use hsa_graph::Cost;
use hsa_tree::{CostModel, CruId, CruNode, CruTree, Delta, SatelliteId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Instance {
    tree: CruTree,
    costs: CostModel,
}

/// Strategy: random ordered tree of `n` nodes, `k` satellites, random small
/// costs — the same shape as `proptest_labels.rs`.
fn arb_instance(max_nodes: usize, max_sats: u32) -> impl Strategy<Value = Instance> {
    (2usize..=max_nodes, 1u32..=max_sats).prop_flat_map(move |(n, k)| {
        let parents = proptest::collection::vec(0usize..n, n - 1);
        let costs = proptest::collection::vec((0u64..40, 0u64..40, 0u64..20, 0u64..20), n);
        let sats = proptest::collection::vec(0u32..k, n);
        (parents, costs, sats).prop_map(move |(parents, costvec, sats)| {
            let mut nodes: Vec<CruNode> = (0..n)
                .map(|i| CruNode {
                    parent: None,
                    children: Vec::new(),
                    name: format!("n{i}"),
                })
                .collect();
            for i in 1..n {
                let p = parents[i - 1] % i;
                nodes[i].parent = Some(CruId(p as u32));
                nodes[p].children.push(CruId(i as u32));
            }
            let tree = CruTree::from_parts(nodes, CruId(0)).expect("construction is valid");
            let mut m = CostModel::zeroed(&tree, k);
            for i in 0..n {
                let id = CruId(i as u32);
                let (h, s, cu, cr) = costvec[i];
                m.set_host_time(id, Cost::new(h));
                m.set_satellite_time(id, Cost::new(s));
                if i != 0 {
                    m.set_comm_up(id, Cost::new(cu));
                }
                if tree.is_leaf(id) {
                    m.pin_leaf(id, SatelliteId(sats[i] % k), Cost::new(cr));
                }
            }
            Instance { tree, costs: m }
        })
    })
}

/// One abstract mutation: `(kind, index, value, num, den)`, mapped onto a
/// concrete [`hsa_tree::DeltaOp`] in the test body (indices are taken modulo
/// the node/leaf counts so every op is applicable).
type OpSpec = (usize, usize, u64, u32, u32);

fn arb_ops(ops: usize) -> impl Strategy<Value = Vec<OpSpec>> {
    proptest::collection::vec((0usize..7, 0usize..64, 0u64..60, 1u32..4, 1u32..4), ops)
}

/// From-scratch recomputation oracle: a serde round trip rebuilds the value
/// with an *empty* hash cache, so its `content_hash` cannot be a stale read.
fn fresh_costs_hash(m: &CostModel) -> u64 {
    let json = serde_json::to_string(m).unwrap();
    let twin: CostModel = serde_json::from_str(&json).unwrap();
    twin.content_hash()
}

fn fresh_tree_hash(t: &CruTree) -> u64 {
    let json = serde_json::to_string(t).unwrap();
    let twin: CruTree = serde_json::from_str(&json).unwrap();
    twin.content_hash()
}

/// Builds the concrete delta for a spec sequence against this instance.
fn build_delta(inst: &Instance, ops: &[OpSpec]) -> Delta {
    let n = inst.tree.len();
    let k = inst.costs.n_satellites();
    let leaves: Vec<CruId> = (0..n)
        .map(|i| CruId(i as u32))
        .filter(|&c| inst.tree.is_leaf(c))
        .collect();
    let node = |i: usize| CruId((i % n) as u32);
    let leaf = |i: usize| leaves[i % leaves.len()];
    let mut d = Delta::new();
    for &(kind, i, v, num, den) in ops {
        d = match kind {
            0 => d.set_host_time(node(i), Cost::new(v)),
            1 => d.set_satellite_time(node(i), Cost::new(v)),
            // comm_up must stay zero on the root — pick a non-root node.
            2 => d.set_comm_up(CruId((i % (n - 1) + 1) as u32), Cost::new(v)),
            3 => d.set_comm_raw(leaf(i), Cost::new(v)),
            4 => d.scale_subtree(node(i), num, den),
            5 => d.scale_satellite(SatelliteId(v as u32 % k), num, den),
            _ => d.repin(leaf(i), SatelliteId(v as u32 % k)),
        };
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// The cached cost hash stays coherent through every prefix of an
    /// arbitrary delta sequence: cached == from-scratch after each apply.
    #[test]
    fn cost_hash_coherent_under_deltas(inst in arb_instance(10, 4), ops in arb_ops(8)) {
        let mut m = inst.costs.clone();
        prop_assert_eq!(m.content_hash(), fresh_costs_hash(&m));
        for op in &ops {
            let d = build_delta(&inst, std::slice::from_ref(op));
            d.apply(&inst.tree, &mut m).unwrap();
            prop_assert_eq!(m.content_hash(), fresh_costs_hash(&m), "stale cache after {:?}", op);
        }
    }

    /// Rolling mutations back (a `restore`-style rollback: rewriting every
    /// table entry from a pristine copy) lands on the original hash again,
    /// and the rolled-back cache is coherent.
    #[test]
    fn cost_hash_coherent_after_rollback(inst in arb_instance(10, 4), ops in arb_ops(8)) {
        let orig = inst.costs.clone();
        let orig_hash = orig.content_hash();
        let mut m = inst.costs.clone();
        build_delta(&inst, &ops).apply(&inst.tree, &mut m).unwrap();
        // Roll back through the invalidating setters, as the engine's
        // `restore` path does when a speculative delta is rejected.
        for i in 0..inst.tree.len() {
            let c = CruId(i as u32);
            m.set_host_time(c, orig.h(c));
            m.set_satellite_time(c, orig.s(c));
            m.set_comm_up(c, orig.c_up(c));
            if inst.tree.is_leaf(c) {
                m.set_comm_raw(c, orig.c_raw(c));
            }
            m.set_pinning(c, orig.pinnings()[i]);
        }
        prop_assert_eq!(&m, &orig, "rollback must restore the model exactly");
        prop_assert_eq!(m.content_hash(), orig_hash, "rollback must restore the hash");
        prop_assert_eq!(m.content_hash(), fresh_costs_hash(&m));
    }

    /// Structurally equal models hash equally regardless of cache state;
    /// a delta that changes the model changes the hash (FNV collisions over
    /// these tiny tables would be a generator bug, not a tolerated event).
    #[test]
    fn cost_hash_is_value_determined(inst in arb_instance(10, 4), ops in arb_ops(4)) {
        let mut m = inst.costs.clone();
        build_delta(&inst, &ops).apply(&inst.tree, &mut m).unwrap();
        if m == inst.costs {
            prop_assert_eq!(m.content_hash(), inst.costs.content_hash());
        } else {
            prop_assert_ne!(m.content_hash(), inst.costs.content_hash());
        }
    }

    /// The tree hash is cached, serde-stable, and distinguishes the trees
    /// this generator produces from a one-node re-rooting.
    #[test]
    fn tree_hash_is_coherent_and_discriminating(inst in arb_instance(10, 4)) {
        prop_assert_eq!(inst.tree.content_hash(), fresh_tree_hash(&inst.tree));
        prop_assert_eq!(inst.tree.content_hash(), inst.tree.clone().content_hash());
        // Renaming one node must change the structural hash.
        let json = serde_json::to_string(&inst.tree).unwrap();
        let renamed: CruTree = serde_json::from_str(&json.replacen("n0", "m0", 1)).unwrap();
        prop_assert_ne!(inst.tree.content_hash(), renamed.content_hash());
    }
}
