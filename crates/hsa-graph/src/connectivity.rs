//! Reachability over alive edges (the SSB/SB loops terminate when the graph
//! "becomes disconnected", paper §4.2).

use crate::{Dwg, NodeId};
use std::collections::VecDeque;

/// Returns the set of nodes reachable from `source` through alive edges,
/// as a boolean mask indexed by node id.
pub fn reachable_from(g: &Dwg, source: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.num_nodes()];
    if source.index() >= seen.len() {
        return seen;
    }
    let mut queue = VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for (_, edge) in g.out_edges(u) {
            let v = edge.to;
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    seen
}

/// Whether `target` is reachable from `source` through alive edges.
pub fn is_connected(g: &Dwg, source: NodeId, target: NodeId) -> bool {
    if target.index() >= g.num_nodes() {
        return false;
    }
    reachable_from(g, source)[target.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cost;

    #[test]
    fn simple_reachability() {
        let mut g = Dwg::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), Cost::new(1), Cost::ZERO);
        g.add_edge(NodeId(1), NodeId(2), Cost::new(1), Cost::ZERO);
        let r = reachable_from(&g, NodeId(0));
        assert_eq!(r, vec![true, true, true, false]);
        assert!(is_connected(&g, NodeId(0), NodeId(2)));
        assert!(!is_connected(&g, NodeId(0), NodeId(3)));
        assert!(!is_connected(&g, NodeId(2), NodeId(0))); // directed
    }

    #[test]
    fn killing_edges_disconnects() {
        let mut g = Dwg::with_nodes(3);
        let e = g.add_edge(NodeId(0), NodeId(1), Cost::new(1), Cost::ZERO);
        g.add_edge(NodeId(1), NodeId(2), Cost::new(1), Cost::ZERO);
        assert!(is_connected(&g, NodeId(0), NodeId(2)));
        g.kill_edge(e);
        assert!(!is_connected(&g, NodeId(0), NodeId(2)));
    }

    #[test]
    fn self_is_always_reachable() {
        let g = Dwg::with_nodes(1);
        assert!(is_connected(&g, NodeId(0), NodeId(0)));
    }

    #[test]
    fn cycles_terminate() {
        let mut g = Dwg::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), Cost::new(1), Cost::ZERO);
        g.add_edge(NodeId(1), NodeId(0), Cost::new(1), Cost::ZERO);
        assert!(is_connected(&g, NodeId(0), NodeId(1)));
        assert!(is_connected(&g, NodeId(1), NodeId(0)));
    }
}
