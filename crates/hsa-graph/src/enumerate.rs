//! Exhaustive path enumeration — the *test oracle* for the search
//! algorithms.
//!
//! On small graphs we can enumerate every simple S→T path and take the exact
//! optimum of any path measure. The SSB and SB algorithms are then property-
//! tested against this oracle on thousands of random graphs.

use crate::{Dwg, EdgeId, GraphError, Lambda, NodeId, Path, ScaledSsb};

/// Enumerates every *simple* (node-repetition-free) alive path from
/// `source` to `target`.
///
/// Fails with [`GraphError::EnumerationLimit`] once more than `limit` paths
/// are found, so a mis-sized call cannot silently truncate the oracle.
pub fn all_simple_paths(
    g: &Dwg,
    source: NodeId,
    target: NodeId,
    limit: usize,
) -> Result<Vec<Path>, GraphError> {
    g.check_node(source)?;
    g.check_node(target)?;
    let mut out = Vec::new();
    let mut stack: Vec<EdgeId> = Vec::new();
    let mut on_path = vec![false; g.num_nodes()];
    on_path[source.index()] = true;
    dfs(g, source, target, limit, &mut stack, &mut on_path, &mut out)?;
    Ok(out)
}

fn dfs(
    g: &Dwg,
    at: NodeId,
    target: NodeId,
    limit: usize,
    stack: &mut Vec<EdgeId>,
    on_path: &mut Vec<bool>,
    out: &mut Vec<Path>,
) -> Result<(), GraphError> {
    if at == target {
        if out.len() >= limit {
            return Err(GraphError::EnumerationLimit { limit });
        }
        out.push(Path::new(stack.clone()));
        // Note: we still continue exploring siblings at the caller; paths
        // through `target` and back are not simple once target re-entered,
        // and `on_path[target]` stays set below, so recursion stops here.
        return Ok(());
    }
    for (eid, edge) in g.out_edges(at) {
        let v = edge.to;
        if on_path[v.index()] {
            continue;
        }
        on_path[v.index()] = true;
        stack.push(eid);
        dfs(g, v, target, limit, stack, on_path, out)?;
        stack.pop();
        on_path[v.index()] = false;
    }
    Ok(())
}

/// The exact minimum-SSB path by enumeration, or `None` when no path exists.
pub fn optimal_ssb_by_enumeration(
    g: &Dwg,
    source: NodeId,
    target: NodeId,
    lambda: Lambda,
    limit: usize,
) -> Result<Option<(Path, ScaledSsb)>, GraphError> {
    let paths = all_simple_paths(g, source, target, limit)?;
    Ok(paths
        .into_iter()
        .map(|p| {
            let w = p.ssb_scaled(g, lambda);
            (p, w)
        })
        .min_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.edges.cmp(&b.0.edges))))
}

/// The exact minimum-SB (`max(S, B)`) path by enumeration.
pub fn optimal_sb_by_enumeration(
    g: &Dwg,
    source: NodeId,
    target: NodeId,
    limit: usize,
) -> Result<Option<(Path, crate::Cost)>, GraphError> {
    let paths = all_simple_paths(g, source, target, limit)?;
    Ok(paths
        .into_iter()
        .map(|p| {
            let w = p.sb_weight(g);
            (p, w)
        })
        .min_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.edges.cmp(&b.0.edges))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cost;

    fn c(v: u64) -> Cost {
        Cost::new(v)
    }

    /// Diamond: 0→1→3 and 0→2→3 plus a direct 0→3 edge.
    fn diamond() -> Dwg {
        let mut g = Dwg::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), c(1), c(9));
        g.add_edge(NodeId(1), NodeId(3), c(1), c(1));
        g.add_edge(NodeId(0), NodeId(2), c(2), c(2));
        g.add_edge(NodeId(2), NodeId(3), c(2), c(2));
        g.add_edge(NodeId(0), NodeId(3), c(10), c(1));
        g
    }

    #[test]
    fn counts_all_simple_paths() {
        let g = diamond();
        let paths = all_simple_paths(&g, NodeId(0), NodeId(3), 100).unwrap();
        assert_eq!(paths.len(), 3);
        for p in &paths {
            p.validate(&g, NodeId(0), NodeId(3)).unwrap();
        }
    }

    #[test]
    fn limit_is_enforced() {
        let g = diamond();
        let err = all_simple_paths(&g, NodeId(0), NodeId(3), 2).unwrap_err();
        assert_eq!(err, GraphError::EnumerationLimit { limit: 2 });
    }

    #[test]
    fn ssb_oracle_picks_true_optimum() {
        let g = diamond();
        // Path 0→1→3: S=2 B=9 → SSB=11; 0→2→3: S=4 B=2 → 6; direct: S=10 B=1 → 11.
        let (p, w) = optimal_ssb_by_enumeration(&g, NodeId(0), NodeId(3), Lambda::HALF, 100)
            .unwrap()
            .unwrap();
        assert_eq!(w, 6);
        assert_eq!(p.nodes(&g), vec![NodeId(0), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn sb_oracle_picks_true_optimum() {
        let g = diamond();
        // SB weights: 9, 4, 10 → optimum 4 on 0→2→3.
        let (p, w) = optimal_sb_by_enumeration(&g, NodeId(0), NodeId(3), 100)
            .unwrap()
            .unwrap();
        assert_eq!(w, c(4));
        assert_eq!(p.nodes(&g), vec![NodeId(0), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn disconnected_graph_yields_none() {
        let g = Dwg::with_nodes(2);
        assert!(
            optimal_ssb_by_enumeration(&g, NodeId(0), NodeId(1), Lambda::HALF, 10)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn parallel_edges_count_as_distinct_paths() {
        let mut g = Dwg::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), c(1), c(1));
        g.add_edge(NodeId(0), NodeId(1), c(2), c(2));
        let paths = all_simple_paths(&g, NodeId(0), NodeId(1), 10).unwrap();
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn cycles_do_not_trap_the_dfs() {
        let mut g = Dwg::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), c(1), c(1));
        g.add_edge(NodeId(1), NodeId(0), c(1), c(1));
        g.add_edge(NodeId(1), NodeId(2), c(1), c(1));
        let paths = all_simple_paths(&g, NodeId(0), NodeId(2), 10).unwrap();
        assert_eq!(paths.len(), 1);
    }
}
