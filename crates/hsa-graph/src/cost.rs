//! Exact cost arithmetic.
//!
//! All times in this reproduction are integral "ticks" (the workload crates
//! interpret one tick as one microsecond). Keeping every weight an integer
//! makes path comparisons, DP pruning and test oracles exact — the 2007
//! paper's worked examples (e.g. Figure 4) are reproduced digit-for-digit.
//!
//! The paper weighs the two path measures with a coefficient λ ∈ [0, 1]:
//! `SSB(P) = λ·S(P) + (1−λ)·B(P)`. To stay in integers we represent λ as an
//! exact rational `num/den` and compare the *scaled* value
//! `num·S + (den−num)·B` (a common positive factor `den` does not change the
//! argmin). With the paper's λ = ½ and `den = 2` the scaled SSB is exactly
//! the `S + B` figure printed in the paper.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub};
use serde::{Deserialize, Serialize};

/// A non-negative time/cost in integral ticks.
///
/// Arithmetic is saturating: the algorithms treat [`Cost::MAX`] as "infinity"
/// (e.g. the initial candidate SSB weight in the paper's Figure 3 pseudo
/// code is `+∞`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Cost(u64);

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost(0);
    /// The largest representable cost; acts as `+∞` in searches.
    pub const MAX: Cost = Cost(u64::MAX);

    /// Creates a cost from raw ticks.
    #[inline]
    pub const fn new(ticks: u64) -> Self {
        Cost(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Creates a cost from (fractional) milliseconds, at microsecond
    /// resolution. Negative or non-finite inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return Cost::ZERO;
        }
        Cost((ms * 1000.0).round() as u64)
    }

    /// The cost expressed in fractional milliseconds (1 tick = 1 µs).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating addition.
    #[inline]
    pub const fn saturating_add(self, rhs: Cost) -> Cost {
        Cost(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (floors at zero).
    #[inline]
    pub const fn saturating_sub(self, rhs: Cost) -> Cost {
        Cost(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication by a plain factor.
    #[inline]
    pub const fn saturating_mul(self, factor: u64) -> Cost {
        Cost(self.0.saturating_mul(factor))
    }

    /// The larger of two costs.
    #[inline]
    pub fn max(self, rhs: Cost) -> Cost {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// True if this cost is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Cost {
    type Output = Cost;
    #[inline]
    fn add(self, rhs: Cost) -> Cost {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Cost {
    #[inline]
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl Sub for Cost {
    type Output = Cost;
    #[inline]
    fn sub(self, rhs: Cost) -> Cost {
        self.saturating_sub(rhs)
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Cost::saturating_add)
    }
}

impl From<u64> for Cost {
    #[inline]
    fn from(ticks: u64) -> Self {
        Cost(ticks)
    }
}

impl fmt::Debug for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Cost::MAX {
            write!(f, "Cost(∞)")
        } else {
            write!(f, "Cost({})", self.0)
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Cost::MAX {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// A scaled SSB value: `num·S + (den−num)·B` computed in 128 bits so that no
/// admissible `Cost` combination can overflow.
pub type ScaledSsb = u128;

/// The `+∞` scaled SSB used to initialise candidate weights.
pub const SSB_INFINITY: ScaledSsb = u128::MAX;

/// An exact rational weighting coefficient λ = `num/den` between the S and B
/// path weights (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub struct Lambda {
    num: u32,
    den: u32,
}

impl Lambda {
    /// λ = ½ with denominator 2: the scaled SSB equals the paper's `S + B`.
    pub const HALF: Lambda = Lambda { num: 1, den: 2 };

    /// λ = 1 (pure host-time / S-weight objective).
    pub const ONE: Lambda = Lambda { num: 1, den: 1 };

    /// λ = 0 (pure bottleneck / B-weight objective).
    pub const ZERO: Lambda = Lambda { num: 0, den: 1 };

    /// Creates λ = `num/den`. Requires `den > 0` and `num ≤ den`.
    pub fn new(num: u32, den: u32) -> Result<Lambda, crate::GraphError> {
        if den == 0 || num > den {
            return Err(crate::GraphError::InvalidLambda { num, den });
        }
        Ok(Lambda { num, den })
    }

    /// The numerator of λ.
    #[inline]
    pub const fn num(self) -> u32 {
        self.num
    }

    /// The denominator of λ.
    #[inline]
    pub const fn den(self) -> u32 {
        self.den
    }

    /// λ as a float, for reporting only.
    pub fn as_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The scaled SSB weight `num·S + (den−num)·B`.
    #[inline]
    pub fn ssb_scaled(self, s: Cost, b: Cost) -> ScaledSsb {
        self.num as u128 * s.ticks() as u128 + (self.den - self.num) as u128 * b.ticks() as u128
    }

    /// The scaled contribution of the S weight alone (`num·S`); every path's
    /// scaled SSB is at least this value, which justifies the paper's
    /// termination test "S weight of Pᵢ exceeds the candidate SSB weight".
    #[inline]
    pub fn s_scaled(self, s: Cost) -> ScaledSsb {
        self.num as u128 * s.ticks() as u128
    }
}

impl Default for Lambda {
    fn default() -> Self {
        Lambda::HALF
    }
}

impl fmt::Display for Lambda {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_saturates_instead_of_overflowing() {
        assert_eq!(Cost::MAX + Cost::new(1), Cost::MAX);
        assert_eq!(Cost::new(3) - Cost::new(5), Cost::ZERO);
        assert_eq!(Cost::MAX.saturating_mul(2), Cost::MAX);
    }

    #[test]
    fn cost_sum_and_ordering() {
        let total: Cost = [1u64, 2, 3].into_iter().map(Cost::new).sum();
        assert_eq!(total, Cost::new(6));
        assert!(Cost::new(2) < Cost::new(3));
        assert_eq!(Cost::new(7).max(Cost::new(4)), Cost::new(7));
    }

    #[test]
    fn cost_millis_round_trip() {
        let c = Cost::from_millis_f64(1.5);
        assert_eq!(c, Cost::new(1500));
        assert!((c.as_millis_f64() - 1.5).abs() < 1e-9);
        assert_eq!(Cost::from_millis_f64(-3.0), Cost::ZERO);
        assert_eq!(Cost::from_millis_f64(f64::NAN), Cost::ZERO);
    }

    #[test]
    fn lambda_half_matches_paper_s_plus_b() {
        // Figure 4 numbers: S=10, B=10 → SSB printed as 20.
        assert_eq!(Lambda::HALF.ssb_scaled(Cost::new(10), Cost::new(10)), 20);
        // S=9, B=20 → 29.
        assert_eq!(Lambda::HALF.ssb_scaled(Cost::new(9), Cost::new(20)), 29);
    }

    #[test]
    fn lambda_extremes() {
        assert_eq!(Lambda::ONE.ssb_scaled(Cost::new(7), Cost::new(100)), 7);
        assert_eq!(Lambda::ZERO.ssb_scaled(Cost::new(7), Cost::new(100)), 100);
    }

    #[test]
    fn lambda_validation() {
        assert!(Lambda::new(3, 2).is_err());
        assert!(Lambda::new(0, 0).is_err());
        let l = Lambda::new(1, 4).unwrap();
        assert_eq!(l.ssb_scaled(Cost::new(4), Cost::new(8)), 4 + 3 * 8);
        assert!((l.as_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lambda_no_overflow_at_extremes() {
        // u64::MAX costs with u32::MAX coefficients must not panic.
        let l = Lambda::new(u32::MAX - 1, u32::MAX).unwrap();
        let v = l.ssb_scaled(Cost::MAX, Cost::MAX);
        assert!(v > 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cost::new(42).to_string(), "42");
        assert_eq!(Cost::MAX.to_string(), "∞");
        assert_eq!(Lambda::HALF.to_string(), "1/2");
        assert_eq!(format!("{:?}", Cost::MAX), "Cost(∞)");
    }
}
