//! Paths in a DWG and their S / B / SSB measures (paper §4.1).

use crate::{Cost, Dwg, EdgeId, GraphError, Lambda, NodeId, ScaledSsb};

/// An S→T path, stored as the ordered list of edge ids it traverses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    /// The traversed edges, in order from the source to the target.
    pub edges: Vec<EdgeId>,
}

impl Path {
    /// Creates a path from an ordered edge list.
    pub fn new(edges: Vec<EdgeId>) -> Self {
        Path { edges }
    }

    /// Number of edges on the path.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True for the empty path (source equal to target).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The S weight: the sum of the σ weights along the path.
    pub fn s_weight(&self, g: &Dwg) -> Cost {
        self.edges.iter().map(|&e| g.edge_unchecked(e).sigma).sum()
    }

    /// The B weight of an *uncoloured* DWG: the maximum β along the path.
    /// (The coloured variant — max of per-colour β sums — lives in the
    /// assignment crate, where colours exist.)
    pub fn b_weight(&self, g: &Dwg) -> Cost {
        self.edges
            .iter()
            .map(|&e| g.edge_unchecked(e).beta)
            .fold(Cost::ZERO, Cost::max)
    }

    /// The scaled SSB weight `λ·S + (1−λ)·B` (see [`Lambda`]).
    pub fn ssb_scaled(&self, g: &Dwg, lambda: Lambda) -> ScaledSsb {
        lambda.ssb_scaled(self.s_weight(g), self.b_weight(g))
    }

    /// The paper's headline measure with λ = ½: `S + B` (the end-to-end
    /// delay once the graph is the coloured assignment graph).
    pub fn s_plus_b(&self, g: &Dwg) -> Cost {
        self.s_weight(g) + self.b_weight(g)
    }

    /// Bokhari's SB weight: `max(S(P), B(P))` (bottleneck processing time).
    pub fn sb_weight(&self, g: &Dwg) -> Cost {
        self.s_weight(g).max(self.b_weight(g))
    }

    /// The node sequence visited, starting at the source. Empty paths yield
    /// an empty sequence because the source is unknown.
    pub fn nodes(&self, g: &Dwg) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.edges.len() + 1);
        for (i, &e) in self.edges.iter().enumerate() {
            let edge = g.edge_unchecked(e);
            if i == 0 {
                out.push(edge.from);
            }
            out.push(edge.to);
        }
        out
    }

    /// Checks that the path is a well-formed alive `source → target` walk.
    pub fn validate(&self, g: &Dwg, source: NodeId, target: NodeId) -> Result<(), GraphError> {
        if self.edges.is_empty() {
            if source == target {
                return Ok(());
            }
            return Err(GraphError::InvalidPath(format!(
                "empty path cannot connect {source:?} to {target:?}"
            )));
        }
        let mut at = source;
        for &e in &self.edges {
            let edge = g.edge(e)?;
            if !g.is_alive(e) {
                return Err(GraphError::InvalidPath(format!("edge {e:?} is eliminated")));
            }
            if edge.from != at {
                return Err(GraphError::InvalidPath(format!(
                    "edge {e:?} starts at {:?}, expected {at:?}",
                    edge.from
                )));
            }
            at = edge.to;
        }
        if at != target {
            return Err(GraphError::InvalidPath(format!(
                "path ends at {at:?}, expected {target:?}"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn c(v: u64) -> Cost {
        Cost::new(v)
    }

    /// S --<5,10>--> M --<4,20>--> T  (two of the Figure 4 edges)
    fn tiny() -> (Dwg, Path) {
        let mut g = Dwg::with_nodes(3);
        let e0 = g.add_edge(NodeId(0), NodeId(1), c(5), c(10));
        let e1 = g.add_edge(NodeId(1), NodeId(2), c(4), c(20));
        (g, Path::new(vec![e0, e1]))
    }

    #[test]
    fn measures_match_figure4_first_path() {
        let (g, p) = tiny();
        assert_eq!(p.s_weight(&g), c(9));
        assert_eq!(p.b_weight(&g), c(20));
        assert_eq!(p.ssb_scaled(&g, Lambda::HALF), 29);
        assert_eq!(p.s_plus_b(&g), c(29));
        assert_eq!(p.sb_weight(&g), c(20));
    }

    #[test]
    fn node_sequence() {
        let (g, p) = tiny();
        assert_eq!(p.nodes(&g), vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert!(Path::new(vec![]).nodes(&g).is_empty());
    }

    #[test]
    fn validate_accepts_good_path() {
        let (g, p) = tiny();
        assert!(p.validate(&g, NodeId(0), NodeId(2)).is_ok());
    }

    #[test]
    fn validate_rejects_wrong_endpoints_and_dead_edges() {
        let (mut g, p) = tiny();
        assert!(p.validate(&g, NodeId(1), NodeId(2)).is_err());
        assert!(p.validate(&g, NodeId(0), NodeId(1)).is_err());
        g.kill_edge(p.edges[0]);
        assert!(p.validate(&g, NodeId(0), NodeId(2)).is_err());
    }

    #[test]
    fn validate_empty_path() {
        let (g, _) = tiny();
        let empty = Path::new(vec![]);
        assert!(empty.validate(&g, NodeId(0), NodeId(0)).is_ok());
        assert!(empty.validate(&g, NodeId(0), NodeId(1)).is_err());
    }

    #[test]
    fn empty_path_weights_are_zero() {
        let (g, _) = tiny();
        let empty = Path::new(vec![]);
        assert_eq!(empty.s_weight(&g), Cost::ZERO);
        assert_eq!(empty.b_weight(&g), Cost::ZERO);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
    }

    #[test]
    fn validate_rejects_disconnected_sequence() {
        let mut g = Dwg::with_nodes(4);
        let e0 = g.add_edge(NodeId(0), NodeId(1), c(1), c(1));
        let e1 = g.add_edge(NodeId(2), NodeId(3), c(1), c(1));
        let p = Path::new(vec![e0, e1]);
        assert!(p.validate(&g, NodeId(0), NodeId(3)).is_err());
    }
}
