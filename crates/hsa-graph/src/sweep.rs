//! Threshold-sweep variants of the SSB and SB searches.
//!
//! The paper's §2 surveys follow-up work on Bokhari's algorithms that
//! replaces the iterate-and-eliminate loop by *parametric* searches
//! (Hansen & Lih 1992; Iqbal & Bokhari 1995). The same idea applies
//! directly to both objectives on a DWG: the optimal path's B weight
//! equals some edge's β, so sweeping a threshold θ over the distinct β
//! values, restricting the graph to edges with `β ≤ θ` and taking the
//! σ-shortest path gives the exact optimum in |distinct β| × O(Dijkstra):
//!
//! * for SSB: minimise `λ·S(θ) + (1−λ)·B(θ)` over feasible θ (where `B(θ)`
//!   is the *actual* max β of the found path, not θ itself);
//! * for SB: minimise `max(S(θ), B(θ))`.
//!
//! Correctness: let `P*` be optimal with bottleneck `B* = β(e*)`. At
//! `θ = B*` the whole of `P*` survives the restriction, so the σ-shortest
//! path `P(θ)` has `S(P(θ)) ≤ S(P*)` and `B(P(θ)) ≤ B*` — its objective is
//! ≤ the optimum, and every swept value is achievable, so the minimum over
//! θ is exactly the optimum. These are used as *independent second
//! implementations* in the property-test suite and as an ablation in the
//! benchmarks (iterate-eliminate vs parametric sweep).

use crate::envelope::{lower_envelope, LambdaEnvelope};
use crate::{dijkstra::shortest_path_in, Cost, Dwg, Lambda, NodeId, Path, ScaledSsb, SolveScratch};

/// Result of a sweep search.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// The optimal path with its S, B and objective value.
    pub best: Option<(Path, Cost, Cost, ScaledSsb)>,
    /// Number of thresholds probed (= number of Dijkstra runs).
    pub probes: usize,
}

/// Exact SSB optimum by threshold sweep. Leaves edge liveness untouched.
pub fn ssb_search_sweep(
    g: &mut Dwg,
    source: NodeId,
    target: NodeId,
    lambda: Lambda,
) -> SweepOutcome {
    let mut ws = SolveScratch::new();
    let mut best: Option<(Path, Cost, Cost, ScaledSsb)> = None;
    let probes = sweep_thresholds(g, source, target, &mut ws, |path, s, b| {
        let obj = lambda.ssb_scaled(s, b);
        if best.as_ref().map(|(_, _, _, o)| obj < *o).unwrap_or(true) {
            best = Some((path, s, b, obj));
        }
    });
    SweepOutcome { best, probes }
}

/// Runs the β-threshold sweep shared by every parametric search: for each
/// distinct alive β value θ (ascending), restricts the graph to `β ≤ θ`,
/// finds the σ-shortest path, and hands `(path, S, B)` to `visit`. Edge
/// liveness is left untouched; returns the number of probes.
fn sweep_thresholds<F: FnMut(Path, Cost, Cost)>(
    g: &mut Dwg,
    source: NodeId,
    target: NodeId,
    ws: &mut SolveScratch,
    mut visit: F,
) -> usize {
    let snapshot = g.snapshot();
    // One β-sorted (β, edge) table, built once. Scanning θ in ascending
    // order, the edges to kill (β > θ) are exactly a suffix of this table,
    // so each probe is a binary search plus a branch-free suffix walk over
    // two parallel columns — no per-θ full rescan of the edge list.
    let mut by_beta: Vec<(Cost, u32)> = g.alive_edges().map(|(id, e)| (e.beta, id.0)).collect();
    by_beta.sort();

    let mut probes = 0;
    let mut i = 0;
    while i < by_beta.len() {
        let theta = by_beta[i].0;
        while i < by_beta.len() && by_beta[i].0 == theta {
            i += 1; // advance past the run of equal β: victims start at i
        }
        g.restore(&snapshot);
        for &(_, e) in &by_beta[i..] {
            g.kill_edge(crate::EdgeId(e));
        }
        probes += 1;
        if let Some(sp) = shortest_path_in(g, source, target, ws) {
            let b = sp.path.b_weight(g);
            visit(sp.path, sp.s_weight, b);
        }
    }
    g.restore(&snapshot);
    probes
}

/// The **λ-frontier** of the SSB path problem: the exact lower envelope of
/// `λ·S + (1−λ)·B` over *every* λ ∈ [0, 1], from one threshold sweep.
///
/// Correctness piggybacks on the sweep argument (module docs): for any λ
/// the optimum's B equals some θ, and the candidate probed at that θ has a
/// no-worse objective; every candidate is achievable. The envelope of the
/// sweep's candidate set therefore touches the optimum at every λ — N
/// λ-queries cost one sweep instead of N searches.
///
/// Returns `None` when S and T are disconnected. Leaves liveness untouched.
pub fn ssb_frontier(g: &mut Dwg, source: NodeId, target: NodeId) -> Option<LambdaEnvelope<Path>> {
    ssb_frontier_in(g, source, target, &mut SolveScratch::new())
}

/// [`ssb_frontier`] running in a reusable workspace.
pub fn ssb_frontier_in(
    g: &mut Dwg,
    source: NodeId,
    target: NodeId,
    ws: &mut SolveScratch,
) -> Option<LambdaEnvelope<Path>> {
    let mut candidates: Vec<(Cost, Cost, Path)> = Vec::new();
    sweep_thresholds(g, source, target, ws, |path, s, b| {
        candidates.push((s, b, path));
    });
    lower_envelope(candidates)
}

/// Exact SB (`max(S,B)`) optimum by threshold sweep. Leaves edge liveness
/// untouched. (No pruning over θ: S(θ) shrinks as θ grows, so every probe
/// can still improve; |thetas| ≤ |E| anyway.)
pub fn sb_search_sweep(g: &mut Dwg, source: NodeId, target: NodeId) -> SweepOutcome {
    let mut ws = SolveScratch::new();
    let mut best: Option<(Path, Cost, Cost, ScaledSsb)> = None;
    let probes = sweep_thresholds(g, source, target, &mut ws, |path, s, b| {
        let obj = s.max(b).ticks() as ScaledSsb;
        if best.as_ref().map(|(_, _, _, o)| obj < *o).unwrap_or(true) {
            best = Some((path, s, b, obj));
        }
    });
    SweepOutcome { best, probes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig4_graph;
    use crate::{sb_search, ssb_search, SsbConfig};

    #[test]
    fn sweep_matches_iterative_on_figure4() {
        let (g, s, t) = fig4_graph();
        let mut g1 = g.clone();
        let sweep = ssb_search_sweep(&mut g1, s, t, Lambda::HALF);
        let (_, sw_s, sw_b, sw_obj) = sweep.best.unwrap();
        assert_eq!(sw_obj, 20);
        assert_eq!(sw_s, Cost::new(10));
        assert_eq!(sw_b, Cost::new(10));
        // Liveness untouched.
        assert_eq!(g1.num_alive(), g.num_edges());
        // Iterative agrees.
        let mut g2 = g.clone();
        let it = ssb_search(&mut g2, s, t, &SsbConfig::default());
        assert_eq!(it.best.unwrap().ssb, sw_obj);
    }

    #[test]
    fn sb_sweep_matches_iterative_on_figure4() {
        let (g, s, t) = fig4_graph();
        let mut g1 = g.clone();
        let sweep = sb_search_sweep(&mut g1, s, t);
        let mut g2 = g.clone();
        let it = sb_search(&mut g2, s, t);
        assert_eq!(
            sweep.best.unwrap().3,
            it.best.unwrap().1.ticks() as ScaledSsb
        );
    }

    #[test]
    fn disconnected_graph() {
        let mut g = Dwg::with_nodes(2);
        let out = ssb_search_sweep(&mut g, NodeId(0), NodeId(1), Lambda::HALF);
        assert!(out.best.is_none());
        assert_eq!(out.probes, 0);
    }

    #[test]
    fn probes_bounded_by_distinct_betas() {
        let (g, s, t) = fig4_graph();
        let mut g1 = g.clone();
        let out = ssb_search_sweep(&mut g1, s, t, Lambda::HALF);
        // Figure 4 has β values {10,8,9,20,12}: 5 distinct.
        assert_eq!(out.probes, 5);
    }

    #[test]
    fn frontier_matches_iterative_search_at_every_lambda() {
        let (g, s, t) = fig4_graph();
        let mut g1 = g.clone();
        let env = ssb_frontier(&mut g1, s, t).unwrap();
        assert_eq!(g1.num_alive(), g.num_edges(), "liveness untouched");
        for num in 0..=16u32 {
            let lambda = Lambda::new(num, 16).unwrap();
            let mut g2 = g.clone();
            let cfg = SsbConfig {
                lambda,
                ..SsbConfig::default()
            };
            let it = ssb_search(&mut g2, s, t, &cfg);
            assert_eq!(env.objective_at(lambda), it.best.unwrap().ssb, "λ={num}/16");
        }
        // λ=1/2 segment carries the Figure 4 optimum ⟨5,10⟩-⟨5,10⟩.
        let seg = env.segment_at(Lambda::HALF);
        assert_eq!((seg.s, seg.b), (Cost::new(10), Cost::new(10)));
    }

    #[test]
    fn frontier_of_disconnected_graph_is_none() {
        let mut g = Dwg::with_nodes(2);
        assert!(ssb_frontier(&mut g, NodeId(0), NodeId(1)).is_none());
    }
}
