//! Threshold-sweep variants of the SSB and SB searches.
//!
//! The paper's §2 surveys follow-up work on Bokhari's algorithms that
//! replaces the iterate-and-eliminate loop by *parametric* searches
//! (Hansen & Lih 1992; Iqbal & Bokhari 1995). The same idea applies
//! directly to both objectives on a DWG: the optimal path's B weight
//! equals some edge's β, so sweeping a threshold θ over the distinct β
//! values, restricting the graph to edges with `β ≤ θ` and taking the
//! σ-shortest path gives the exact optimum in |distinct β| × O(Dijkstra):
//!
//! * for SSB: minimise `λ·S(θ) + (1−λ)·B(θ)` over feasible θ (where `B(θ)`
//!   is the *actual* max β of the found path, not θ itself);
//! * for SB: minimise `max(S(θ), B(θ))`.
//!
//! Correctness: let `P*` be optimal with bottleneck `B* = β(e*)`. At
//! `θ = B*` the whole of `P*` survives the restriction, so the σ-shortest
//! path `P(θ)` has `S(P(θ)) ≤ S(P*)` and `B(P(θ)) ≤ B*` — its objective is
//! ≤ the optimum, and every swept value is achievable, so the minimum over
//! θ is exactly the optimum. These are used as *independent second
//! implementations* in the property-test suite and as an ablation in the
//! benchmarks (iterate-eliminate vs parametric sweep).

use crate::{dijkstra::shortest_path, Cost, Dwg, Lambda, NodeId, Path, ScaledSsb};

/// Result of a sweep search.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// The optimal path with its S, B and objective value.
    pub best: Option<(Path, Cost, Cost, ScaledSsb)>,
    /// Number of thresholds probed (= number of Dijkstra runs).
    pub probes: usize,
}

/// Exact SSB optimum by threshold sweep. Leaves edge liveness untouched.
pub fn ssb_search_sweep(
    g: &mut Dwg,
    source: NodeId,
    target: NodeId,
    lambda: Lambda,
) -> SweepOutcome {
    let snapshot = g.snapshot();
    let mut thetas: Vec<Cost> = g.alive_edges().map(|(_, e)| e.beta).collect();
    thetas.sort();
    thetas.dedup();

    let mut best: Option<(Path, Cost, Cost, ScaledSsb)> = None;
    let mut probes = 0;
    for &theta in &thetas {
        g.restore(&snapshot);
        let victims: Vec<_> = g
            .alive_edges()
            .filter(|(_, e)| e.beta > theta)
            .map(|(id, _)| id)
            .collect();
        for e in victims {
            g.kill_edge(e);
        }
        probes += 1;
        if let Some(sp) = shortest_path(g, source, target) {
            let b = sp.path.b_weight(g);
            let obj = lambda.ssb_scaled(sp.s_weight, b);
            if best.as_ref().map(|(_, _, _, o)| obj < *o).unwrap_or(true) {
                best = Some((sp.path, sp.s_weight, b, obj));
            }
        }
    }
    g.restore(&snapshot);
    SweepOutcome { best, probes }
}

/// Exact SB (`max(S,B)`) optimum by threshold sweep. Leaves edge liveness
/// untouched.
pub fn sb_search_sweep(g: &mut Dwg, source: NodeId, target: NodeId) -> SweepOutcome {
    let snapshot = g.snapshot();
    let mut thetas: Vec<Cost> = g.alive_edges().map(|(_, e)| e.beta).collect();
    thetas.sort();
    thetas.dedup();

    let mut best: Option<(Path, Cost, Cost, ScaledSsb)> = None;
    let mut probes = 0;
    for &theta in &thetas {
        // Monotone refinement: once max(S(θ),θ) for growing θ exceeds the
        // candidate *and* S(θ) can only shrink as θ grows, we cannot prune
        // blindly; probe everything (|thetas| is ≤ |E| anyway).
        g.restore(&snapshot);
        let victims: Vec<_> = g
            .alive_edges()
            .filter(|(_, e)| e.beta > theta)
            .map(|(id, _)| id)
            .collect();
        for e in victims {
            g.kill_edge(e);
        }
        probes += 1;
        if let Some(sp) = shortest_path(g, source, target) {
            let b = sp.path.b_weight(g);
            let obj = sp.s_weight.max(b).ticks() as ScaledSsb;
            if best.as_ref().map(|(_, _, _, o)| obj < *o).unwrap_or(true) {
                best = Some((sp.path, sp.s_weight, b, obj));
            }
        }
    }
    g.restore(&snapshot);
    SweepOutcome { best, probes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig4_graph;
    use crate::{sb_search, ssb_search, SsbConfig};

    #[test]
    fn sweep_matches_iterative_on_figure4() {
        let (g, s, t) = fig4_graph();
        let mut g1 = g.clone();
        let sweep = ssb_search_sweep(&mut g1, s, t, Lambda::HALF);
        let (_, sw_s, sw_b, sw_obj) = sweep.best.unwrap();
        assert_eq!(sw_obj, 20);
        assert_eq!(sw_s, Cost::new(10));
        assert_eq!(sw_b, Cost::new(10));
        // Liveness untouched.
        assert_eq!(g1.num_alive(), g.num_edges());
        // Iterative agrees.
        let mut g2 = g.clone();
        let it = ssb_search(&mut g2, s, t, &SsbConfig::default());
        assert_eq!(it.best.unwrap().ssb, sw_obj);
    }

    #[test]
    fn sb_sweep_matches_iterative_on_figure4() {
        let (g, s, t) = fig4_graph();
        let mut g1 = g.clone();
        let sweep = sb_search_sweep(&mut g1, s, t);
        let mut g2 = g.clone();
        let it = sb_search(&mut g2, s, t);
        assert_eq!(
            sweep.best.unwrap().3,
            it.best.unwrap().1.ticks() as ScaledSsb
        );
    }

    #[test]
    fn disconnected_graph() {
        let mut g = Dwg::with_nodes(2);
        let out = ssb_search_sweep(&mut g, NodeId(0), NodeId(1), Lambda::HALF);
        assert!(out.best.is_none());
        assert_eq!(out.probes, 0);
    }

    #[test]
    fn probes_bounded_by_distinct_betas() {
        let (g, s, t) = fig4_graph();
        let mut g1 = g.clone();
        let out = ssb_search_sweep(&mut g1, s, t, Lambda::HALF);
        // Figure 4 has β values {10,8,9,20,12}: 5 distinct.
        assert_eq!(out.probes, 5);
    }
}
