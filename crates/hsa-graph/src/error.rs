//! Error type for graph construction and search.

use core::fmt;

/// Errors raised by the graph substrate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// A node id referenced a node that does not exist.
    NodeOutOfRange {
        /// The offending node index.
        node: u32,
        /// The number of nodes in the graph.
        len: u32,
    },
    /// An edge id referenced an edge that does not exist.
    EdgeOutOfRange {
        /// The offending edge index.
        edge: u32,
        /// The number of edges in the graph.
        len: u32,
    },
    /// A path failed validation (broken adjacency, dead edge, wrong
    /// endpoints …).
    InvalidPath(String),
    /// Path enumeration hit its configured limit before completing; results
    /// would be incomplete, so the caller gets an error instead.
    EnumerationLimit {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// λ must satisfy `den > 0` and `num ≤ den`.
    InvalidLambda {
        /// Numerator supplied.
        num: u32,
        /// Denominator supplied.
        den: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, len } => {
                write!(f, "node id {node} out of range (graph has {len} nodes)")
            }
            GraphError::EdgeOutOfRange { edge, len } => {
                write!(f, "edge id {edge} out of range (graph has {len} edges)")
            }
            GraphError::InvalidPath(msg) => write!(f, "invalid path: {msg}"),
            GraphError::EnumerationLimit { limit } => {
                write!(f, "path enumeration exceeded the limit of {limit} paths")
            }
            GraphError::InvalidLambda { num, den } => {
                write!(f, "invalid lambda {num}/{den}: need den > 0 and num <= den")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::NodeOutOfRange { node: 9, len: 3 };
        assert!(e.to_string().contains("node id 9"));
        let e = GraphError::EnumerationLimit { limit: 10 };
        assert!(e.to_string().contains("10"));
        let e = GraphError::InvalidLambda { num: 5, den: 2 };
        assert!(e.to_string().contains("5/2"));
    }
}
