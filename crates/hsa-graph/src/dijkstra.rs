//! Dijkstra shortest path over the σ (sum) weights.
//!
//! This is the "shortest path-searching algorithm" invoked once per
//! iteration of the SSB algorithm (paper §4.2, which cites Dijkstra as the
//! canonical choice). Only *alive* edges participate, so the elimination
//! loop never rebuilds the graph.
//!
//! Determinism: ties are broken first on distance, then on node id, and the
//! predecessor of a node is only replaced by a *strictly* shorter distance,
//! so repeated runs return identical paths — important for reproducing the
//! paper's iteration traces exactly.

use crate::{Cost, Dwg, EdgeId, NodeId, Path};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The result of a single-source, single-target run.
#[derive(Clone, Debug)]
pub struct ShortestPath {
    /// The σ-shortest path found.
    pub path: Path,
    /// Its total σ weight.
    pub s_weight: Cost,
}

/// Finds the σ-shortest alive path from `source` to `target`.
///
/// Returns `None` when `target` is unreachable through alive edges.
pub fn shortest_path(g: &Dwg, source: NodeId, target: NodeId) -> Option<ShortestPath> {
    let n = g.num_nodes();
    debug_assert!(source.index() < n && target.index() < n);
    let mut dist: Vec<Cost> = vec![Cost::MAX; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    let mut done: Vec<bool> = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();

    dist[source.index()] = Cost::ZERO;
    heap.push(Reverse((Cost::ZERO, source.0)));

    while let Some(Reverse((d, u))) = heap.pop() {
        let u = NodeId(u);
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        if u == target {
            break;
        }
        for (eid, edge) in g.out_edges(u) {
            let v = edge.to;
            if done[v.index()] {
                continue;
            }
            let nd = d + edge.sigma;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                pred[v.index()] = Some(eid);
                heap.push(Reverse((nd, v.0)));
            }
        }
    }

    if dist[target.index()] == Cost::MAX && source != target {
        return None;
    }

    // Reconstruct by walking predecessors back to the source.
    let mut edges = Vec::new();
    let mut at = target;
    while at != source {
        let e = pred[at.index()]?;
        edges.push(e);
        at = g.edge_unchecked(e).from;
    }
    edges.reverse();
    Some(ShortestPath {
        s_weight: dist[target.index()],
        path: Path::new(edges),
    })
}

/// All-targets σ distances from `source` (alive edges only); `Cost::MAX`
/// marks unreachable nodes.
pub fn distances_from(g: &Dwg, source: NodeId) -> Vec<Cost> {
    let n = g.num_nodes();
    let mut dist: Vec<Cost> = vec![Cost::MAX; n];
    let mut done: Vec<bool> = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(Cost, u32)>> = BinaryHeap::new();
    dist[source.index()] = Cost::ZERO;
    heap.push(Reverse((Cost::ZERO, source.0)));
    while let Some(Reverse((d, u))) = heap.pop() {
        let u = NodeId(u);
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        for (_, edge) in g.out_edges(u) {
            let v = edge.to;
            let nd = d + edge.sigma;
            if !done[v.index()] && nd < dist[v.index()] {
                dist[v.index()] = nd;
                heap.push(Reverse((nd, v.0)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: u64) -> Cost {
        Cost::new(v)
    }

    #[test]
    fn straight_line() {
        let mut g = Dwg::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), c(2), c(0));
        g.add_edge(NodeId(1), NodeId(2), c(3), c(0));
        let sp = shortest_path(&g, NodeId(0), NodeId(2)).unwrap();
        assert_eq!(sp.s_weight, c(5));
        assert_eq!(sp.path.len(), 2);
        sp.path.validate(&g, NodeId(0), NodeId(2)).unwrap();
    }

    #[test]
    fn prefers_cheaper_parallel_edge() {
        let mut g = Dwg::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), c(9), c(0));
        let cheap = g.add_edge(NodeId(0), NodeId(1), c(4), c(0));
        let sp = shortest_path(&g, NodeId(0), NodeId(1)).unwrap();
        assert_eq!(sp.s_weight, c(4));
        assert_eq!(sp.path.edges, vec![cheap]);
    }

    #[test]
    fn takes_detour_when_cheaper() {
        let mut g = Dwg::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(3), c(10), c(0));
        g.add_edge(NodeId(0), NodeId(1), c(1), c(0));
        g.add_edge(NodeId(1), NodeId(2), c(1), c(0));
        g.add_edge(NodeId(2), NodeId(3), c(1), c(0));
        let sp = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(sp.s_weight, c(3));
        assert_eq!(sp.path.len(), 3);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = Dwg::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), c(1), c(0));
        assert!(shortest_path(&g, NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn dead_edges_are_ignored() {
        let mut g = Dwg::with_nodes(2);
        let e = g.add_edge(NodeId(0), NodeId(1), c(1), c(0));
        g.kill_edge(e);
        assert!(shortest_path(&g, NodeId(0), NodeId(1)).is_none());
        g.revive_all();
        assert!(shortest_path(&g, NodeId(0), NodeId(1)).is_some());
    }

    #[test]
    fn source_equals_target() {
        let g = Dwg::with_nodes(1);
        let sp = shortest_path(&g, NodeId(0), NodeId(0)).unwrap();
        assert_eq!(sp.s_weight, Cost::ZERO);
        assert!(sp.path.is_empty());
    }

    #[test]
    fn zero_weight_edges_are_fine() {
        let mut g = Dwg::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), c(0), c(5));
        g.add_edge(NodeId(1), NodeId(2), c(0), c(7));
        let sp = shortest_path(&g, NodeId(0), NodeId(2)).unwrap();
        assert_eq!(sp.s_weight, Cost::ZERO);
        assert_eq!(sp.path.len(), 2);
    }

    #[test]
    fn distances_from_matches_point_queries() {
        let mut g = Dwg::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), c(1), c(0));
        g.add_edge(NodeId(1), NodeId(2), c(2), c(0));
        g.add_edge(NodeId(0), NodeId(2), c(5), c(0));
        let d = distances_from(&g, NodeId(0));
        assert_eq!(d[0], c(0));
        assert_eq!(d[1], c(1));
        assert_eq!(d[2], c(3));
        assert_eq!(d[3], Cost::MAX);
        for t in 1..3u32 {
            let sp = shortest_path(&g, NodeId(0), NodeId(t)).unwrap();
            assert_eq!(sp.s_weight, d[t as usize]);
        }
    }

    #[test]
    fn undirected_edges_travel_both_ways() {
        let mut g = Dwg::with_nodes(2);
        g.add_undirected_edge(NodeId(0), NodeId(1), c(2), c(0), 0);
        assert_eq!(
            shortest_path(&g, NodeId(1), NodeId(0)).unwrap().s_weight,
            c(2)
        );
    }
}
