//! Dijkstra shortest path over the σ (sum) weights.
//!
//! This is the "shortest path-searching algorithm" invoked once per
//! iteration of the SSB algorithm (paper §4.2, which cites Dijkstra as the
//! canonical choice). Only *alive* edges participate, so the elimination
//! loop never rebuilds the graph.
//!
//! Both variants run inside a caller-provided [`SolveScratch`]
//! ([`shortest_path_in`], [`distances_from_in`]) so repeated searches on
//! the same graph allocate nothing; the scratch-free entry points remain
//! as convenience wrappers.
//!
//! Determinism: ties are broken first on distance, then on node id, and the
//! predecessor of a node is only replaced by a *strictly* shorter distance,
//! so repeated runs return identical paths — important for reproducing the
//! paper's iteration traces exactly.

use crate::{Cost, Dwg, EdgeId, NodeId, Path, SolveScratch};

/// The result of a single-source, single-target run.
#[derive(Clone, Debug)]
pub struct ShortestPath {
    /// The σ-shortest path found.
    pub path: Path,
    /// Its total σ weight.
    pub s_weight: Cost,
}

/// Finds the σ-shortest alive path from `source` to `target`.
///
/// Returns `None` when `target` is unreachable through alive edges.
/// Convenience wrapper over [`shortest_path_in`] with a throwaway
/// workspace.
pub fn shortest_path(g: &Dwg, source: NodeId, target: NodeId) -> Option<ShortestPath> {
    shortest_path_in(g, source, target, &mut SolveScratch::new())
}

/// [`shortest_path`] running in a reusable workspace: no per-call
/// allocation beyond the returned path itself.
pub fn shortest_path_in(
    g: &Dwg,
    source: NodeId,
    target: NodeId,
    ws: &mut SolveScratch,
) -> Option<ShortestPath> {
    let n = g.num_nodes();
    debug_assert!(source.index() < n && target.index() < n);
    ws.begin(n);
    ws.seed(source.index(), Cost::ZERO);
    ws.push(Cost::ZERO, source.0);

    while let Some((d, u)) = ws.pop() {
        let u = NodeId(u);
        if ws.is_done(u.index()) {
            continue;
        }
        ws.mark_done(u.index());
        if u == target {
            break;
        }
        for (eid, edge) in g.out_edges(u) {
            let v = edge.to;
            if ws.is_done(v.index()) {
                continue;
            }
            let nd = d + edge.sigma;
            if ws.improve(v.index(), nd, eid.0) {
                ws.push(nd, v.0);
            }
        }
    }

    if ws.dist(target.index()) == Cost::MAX && source != target {
        return None;
    }

    // Reconstruct by walking predecessors back to the source.
    let mut edges = Vec::new();
    let mut at = target;
    while at != source {
        let e = EdgeId(ws.pred(at.index())?);
        edges.push(e);
        at = g.edge_unchecked(e).from;
    }
    edges.reverse();
    Some(ShortestPath {
        s_weight: ws.dist(target.index()),
        path: Path::new(edges),
    })
}

/// All-targets σ distances from `source` (alive edges only); `Cost::MAX`
/// marks unreachable nodes. Convenience wrapper over
/// [`distances_from_in`].
pub fn distances_from(g: &Dwg, source: NodeId) -> Vec<Cost> {
    let mut out = Vec::new();
    distances_from_in(g, source, &mut SolveScratch::new(), &mut out);
    out
}

/// [`distances_from`] running in a reusable workspace; the result is
/// written into `out` (cleared first) so steady-state callers allocate
/// nothing.
pub fn distances_from_in(g: &Dwg, source: NodeId, ws: &mut SolveScratch, out: &mut Vec<Cost>) {
    let n = g.num_nodes();
    ws.begin(n);
    ws.seed(source.index(), Cost::ZERO);
    ws.push(Cost::ZERO, source.0);
    while let Some((d, u)) = ws.pop() {
        let u = NodeId(u);
        if ws.is_done(u.index()) {
            continue;
        }
        ws.mark_done(u.index());
        for (eid, edge) in g.out_edges(u) {
            let v = edge.to;
            let nd = d + edge.sigma;
            if !ws.is_done(v.index()) && ws.improve(v.index(), nd, eid.0) {
                ws.push(nd, v.0);
            }
        }
    }
    out.clear();
    out.extend((0..n).map(|i| ws.dist(i)));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: u64) -> Cost {
        Cost::new(v)
    }

    #[test]
    fn straight_line() {
        let mut g = Dwg::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), c(2), c(0));
        g.add_edge(NodeId(1), NodeId(2), c(3), c(0));
        let sp = shortest_path(&g, NodeId(0), NodeId(2)).unwrap();
        assert_eq!(sp.s_weight, c(5));
        assert_eq!(sp.path.len(), 2);
        sp.path.validate(&g, NodeId(0), NodeId(2)).unwrap();
    }

    #[test]
    fn prefers_cheaper_parallel_edge() {
        let mut g = Dwg::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), c(9), c(0));
        let cheap = g.add_edge(NodeId(0), NodeId(1), c(4), c(0));
        let sp = shortest_path(&g, NodeId(0), NodeId(1)).unwrap();
        assert_eq!(sp.s_weight, c(4));
        assert_eq!(sp.path.edges, vec![cheap]);
    }

    #[test]
    fn takes_detour_when_cheaper() {
        let mut g = Dwg::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(3), c(10), c(0));
        g.add_edge(NodeId(0), NodeId(1), c(1), c(0));
        g.add_edge(NodeId(1), NodeId(2), c(1), c(0));
        g.add_edge(NodeId(2), NodeId(3), c(1), c(0));
        let sp = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(sp.s_weight, c(3));
        assert_eq!(sp.path.len(), 3);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = Dwg::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), c(1), c(0));
        assert!(shortest_path(&g, NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn dead_edges_are_ignored() {
        let mut g = Dwg::with_nodes(2);
        let e = g.add_edge(NodeId(0), NodeId(1), c(1), c(0));
        g.kill_edge(e);
        assert!(shortest_path(&g, NodeId(0), NodeId(1)).is_none());
        g.revive_all();
        assert!(shortest_path(&g, NodeId(0), NodeId(1)).is_some());
    }

    #[test]
    fn source_equals_target() {
        let g = Dwg::with_nodes(1);
        let sp = shortest_path(&g, NodeId(0), NodeId(0)).unwrap();
        assert_eq!(sp.s_weight, Cost::ZERO);
        assert!(sp.path.is_empty());
    }

    #[test]
    fn zero_weight_edges_are_fine() {
        let mut g = Dwg::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), c(0), c(5));
        g.add_edge(NodeId(1), NodeId(2), c(0), c(7));
        let sp = shortest_path(&g, NodeId(0), NodeId(2)).unwrap();
        assert_eq!(sp.s_weight, Cost::ZERO);
        assert_eq!(sp.path.len(), 2);
    }

    #[test]
    fn distances_from_matches_point_queries() {
        let mut g = Dwg::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), c(1), c(0));
        g.add_edge(NodeId(1), NodeId(2), c(2), c(0));
        g.add_edge(NodeId(0), NodeId(2), c(5), c(0));
        let d = distances_from(&g, NodeId(0));
        assert_eq!(d[0], c(0));
        assert_eq!(d[1], c(1));
        assert_eq!(d[2], c(3));
        assert_eq!(d[3], Cost::MAX);
        for t in 1..3u32 {
            let sp = shortest_path(&g, NodeId(0), NodeId(t)).unwrap();
            assert_eq!(sp.s_weight, d[t as usize]);
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        // One workspace across different graphs and sizes must behave as if
        // freshly allocated each time.
        let mut ws = SolveScratch::new();
        let mut big = Dwg::with_nodes(6);
        for i in 0..5u32 {
            big.add_edge(NodeId(i), NodeId(i + 1), c(i as u64 + 1), c(0));
        }
        let mut small = Dwg::with_nodes(2);
        small.add_edge(NodeId(0), NodeId(1), c(4), c(0));
        for _ in 0..3 {
            let a = shortest_path_in(&big, NodeId(0), NodeId(5), &mut ws).unwrap();
            assert_eq!(a.s_weight, c(15));
            let b = shortest_path_in(&small, NodeId(0), NodeId(1), &mut ws).unwrap();
            assert_eq!(b.s_weight, c(4));
            assert_eq!(b.path.len(), 1);
            // Stale state from the 6-node run must not leak into this one.
            assert!(shortest_path_in(&small, NodeId(1), NodeId(0), &mut ws).is_none());
        }
    }

    #[test]
    fn distances_from_in_reuses_output_buffer() {
        let mut g = Dwg::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), c(2), c(0));
        let mut ws = SolveScratch::new();
        let mut out = vec![c(99); 17]; // stale, oversized
        distances_from_in(&g, NodeId(0), &mut ws, &mut out);
        assert_eq!(out, vec![c(0), c(2), Cost::MAX]);
    }

    #[test]
    fn undirected_edges_travel_both_ways() {
        let mut g = Dwg::with_nodes(2);
        g.add_undirected_edge(NodeId(0), NodeId(1), c(2), c(0), 0);
        assert_eq!(
            shortest_path(&g, NodeId(1), NodeId(0)).unwrap().s_weight,
            c(2)
        );
    }
}
