//! Bokhari's SB algorithm (IEEE ToC 1988), the baseline the paper modifies.
//!
//! Finds the S→T path minimising the *SB weight* `max(S(P), B(P))` — the
//! bottleneck processing time of Bokhari's host–satellite partitioning. The
//! structure is the same candidate/eliminate loop as the SSB algorithm, with
//! the elimination threshold taken against the *candidate* SB weight: any
//! path through an edge with `β(e) ≥ SB_can` weighs at least `SB_can` and
//! cannot strictly improve.

use crate::{dijkstra::shortest_path_in, Cost, Dwg, EdgeId, NodeId, Path, SolveScratch};

/// Outcome of an SB search.
#[derive(Clone, Debug)]
pub struct SbOutcome {
    /// The optimal path and its `max(S, B)` weight, unless disconnected.
    pub best: Option<(Path, Cost)>,
    /// Iterations executed.
    pub iterations: usize,
    /// Total edges eliminated.
    pub edges_removed: usize,
}

/// Runs Bokhari's SB algorithm between `source` and `target`.
///
/// Like [`crate::ssb_search`], the search consumes edge liveness.
/// Convenience wrapper over [`sb_search_in`] with a throwaway workspace.
pub fn sb_search(g: &mut Dwg, source: NodeId, target: NodeId) -> SbOutcome {
    sb_search_in(g, source, target, &mut SolveScratch::new())
}

/// [`sb_search`] running in a reusable [`SolveScratch`]; repeated solves
/// reuse the Dijkstra and elimination buffers.
pub fn sb_search_in(
    g: &mut Dwg,
    source: NodeId,
    target: NodeId,
    ws: &mut SolveScratch,
) -> SbOutcome {
    let mut best: Option<(Path, Cost)> = None;
    let mut best_sb = Cost::MAX;
    let mut iterations = 0usize;
    let mut edges_removed = 0usize;

    while let Some(sp) = shortest_path_in(g, source, target, ws) {
        iterations += 1;
        let s = sp.s_weight;
        let b = sp.path.b_weight(g);
        let sb = s.max(b);
        if sb < best_sb {
            best_sb = sb;
            best = Some((sp.path, sb));
        }
        // Remaining paths have S ≥ S(Pᵢ); once that alone reaches the
        // candidate, stop.
        if s >= best_sb {
            break;
        }
        // Eliminate edges that can no longer be on a strictly better path.
        let mut buf = std::mem::take(&mut ws.edge_buf);
        buf.clear();
        buf.extend(
            g.alive_edges()
                .filter(|(_, e)| e.beta >= best_sb)
                .map(|(id, _)| id.0),
        );
        if buf.is_empty() {
            // S < best_sb and every alive β < best_sb: the current path
            // already weighs max(S,B) < best_sb — impossible, since the
            // candidate would have been updated to it. Defensive stop.
            debug_assert!(false, "SB loop stalled");
            ws.edge_buf = buf;
            break;
        }
        edges_removed += buf.len();
        for &e in &buf {
            g.kill_edge(EdgeId(e));
        }
        ws.edge_buf = buf;
    }

    SbOutcome {
        best,
        iterations,
        edges_removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::optimal_sb_by_enumeration;

    fn c(v: u64) -> Cost {
        Cost::new(v)
    }

    fn diamond() -> Dwg {
        let mut g = Dwg::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), c(1), c(9));
        g.add_edge(NodeId(1), NodeId(3), c(1), c(1));
        g.add_edge(NodeId(0), NodeId(2), c(2), c(2));
        g.add_edge(NodeId(2), NodeId(3), c(2), c(2));
        g.add_edge(NodeId(0), NodeId(3), c(10), c(1));
        g
    }

    #[test]
    fn diamond_matches_oracle() {
        let mut g = diamond();
        let oracle = optimal_sb_by_enumeration(&g, NodeId(0), NodeId(3), 100)
            .unwrap()
            .unwrap();
        let out = sb_search(&mut g, NodeId(0), NodeId(3));
        assert_eq!(out.best.unwrap().1, oracle.1);
    }

    #[test]
    fn sb_and_ssb_optima_differ_on_crafted_graph() {
        // Two parallel edges: (S=2, B=10) and (S=9, B=9).
        //   SB weights:  max(2,10)=10  vs max(9,9)=9  → SB prefers the second.
        //   S+B weights: 12 vs 18                     → SSB prefers the first.
        // This is the paper's §2 point: the objectives pick different paths.
        let mut g = Dwg::with_nodes(2);
        let first = g.add_edge(NodeId(0), NodeId(1), c(2), c(10));
        let second = g.add_edge(NodeId(0), NodeId(1), c(9), c(9));
        let sb = sb_search(&mut g.clone(), NodeId(0), NodeId(1));
        assert_eq!(sb.best.as_ref().unwrap().0.edges, vec![second]);
        let ssb = crate::ssb_search(&mut g, NodeId(0), NodeId(1), &crate::SsbConfig::default());
        assert_eq!(ssb.best.as_ref().unwrap().path.edges, vec![first]);
    }

    #[test]
    fn disconnected_yields_none() {
        let mut g = Dwg::with_nodes(2);
        let out = sb_search(&mut g, NodeId(0), NodeId(1));
        assert!(out.best.is_none());
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn single_edge() {
        let mut g = Dwg::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), c(3), c(7));
        let out = sb_search(&mut g, NodeId(0), NodeId(1));
        assert_eq!(out.best.unwrap().1, c(7));
    }

    #[test]
    fn prefers_balanced_path() {
        // Path A: S=1, B=100 → 100. Path B: S=60, B=50 → 60.
        let mut g = Dwg::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), c(1), c(100));
        g.add_edge(NodeId(1), NodeId(2), c(0), c(0));
        g.add_edge(NodeId(0), NodeId(2), c(60), c(50));
        let out = sb_search(&mut g, NodeId(0), NodeId(2));
        assert_eq!(out.best.unwrap().1, c(60));
    }
}
