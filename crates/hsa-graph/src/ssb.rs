//! The SSB algorithm (paper §4.2, Figure 3).
//!
//! Finds the S→T path minimising `SSB(P) = λ·S(P) + (1−λ)·B(P)` on a doubly
//! weighted graph, by iterating:
//!
//! 1. find the σ-shortest alive path `Pᵢ` (Dijkstra);
//! 2. if `SSB(Pᵢ)` beats the candidate, record it;
//! 3. stop if `λ·S(Pᵢ)` already reaches the candidate weight — every
//!    remaining path is at least as expensive — or if S and T got
//!    disconnected;
//! 4. otherwise eliminate all edges whose β is at/above `B(Pᵢ)` and repeat.
//!
//! ## Elimination rule
//!
//! The paper's prose removes edges with `β(e) > B(Pᵢ)` while its worked
//! example (Figure 4) behaves like `β(e) ≥ B(Pᵢ)`. Both are *safe*: a path
//! through such an edge has `B ≥ B(Pᵢ)` and (being compared against the
//! σ-shortest path) `S ≥ S(Pᵢ)`, so its SSB cannot beat the recorded
//! candidate. Only `≥` guarantees progress on its own — with `>` the loop
//! stalls whenever the max-β edge of `Pᵢ` ties `B(Pᵢ)` — so under
//! [`EliminationRule::Strict`] a stalled iteration falls back to `≥` (the
//! fallback count is reported). The default is [`EliminationRule::GreaterEqual`],
//! which reproduces Figure 4 exactly.

use crate::{
    dijkstra::shortest_path_in, Cost, Dwg, EdgeId, Lambda, NodeId, Path, ScaledSsb, SolveScratch,
    SSB_INFINITY,
};

/// How edges are eliminated relative to the current path's B weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EliminationRule {
    /// Remove edges with `β(e) ≥ B(Pᵢ)` (matches the paper's Figure 4 trace;
    /// guarantees progress every iteration).
    #[default]
    GreaterEqual,
    /// Remove edges with `β(e) > B(Pᵢ)` (the paper's prose); falls back to
    /// `≥` on stalled iterations to preserve termination.
    Strict,
}

/// Configuration of the SSB search.
#[derive(Clone, Copy, Debug)]
pub struct SsbConfig {
    /// The weighting coefficient λ.
    pub lambda: Lambda,
    /// The elimination rule (see module docs).
    pub rule: EliminationRule,
    /// Hard iteration cap (defence in depth; the algorithm provably
    /// terminates within `|E| + 1` iterations under either rule).
    pub max_iterations: usize,
    /// Record a full per-iteration trace (used by the Figure 4 repro).
    pub record_trace: bool,
}

impl Default for SsbConfig {
    fn default() -> Self {
        SsbConfig {
            lambda: Lambda::HALF,
            rule: EliminationRule::GreaterEqual,
            max_iterations: usize::MAX,
            record_trace: false,
        }
    }
}

/// Why the iteration stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Termination {
    /// S and T are no longer connected by alive edges.
    Disconnected,
    /// The σ-shortest path's scaled `λ·S` reached the candidate SSB weight.
    SBound,
    /// The `max_iterations` guard fired.
    IterationCap,
}

/// One recorded iteration of the search.
#[derive(Clone, Debug)]
pub struct SsbIteration {
    /// The σ-shortest path of this iteration.
    pub path: Path,
    /// Its S weight.
    pub s: Cost,
    /// Its B weight.
    pub b: Cost,
    /// Its scaled SSB weight.
    pub ssb: ScaledSsb,
    /// Whether it replaced the candidate.
    pub improved: bool,
    /// Edges eliminated at the end of this iteration.
    pub removed: Vec<EdgeId>,
    /// Whether a Strict-rule stall forced the `≥` fallback.
    pub stall_fallback: bool,
}

/// The best path found, with its weights.
#[derive(Clone, Debug)]
pub struct SsbBest {
    /// The optimal path.
    pub path: Path,
    /// Its S weight.
    pub s: Cost,
    /// Its B weight.
    pub b: Cost,
    /// Its scaled SSB weight.
    pub ssb: ScaledSsb,
}

/// Outcome of an SSB search.
#[derive(Clone, Debug)]
pub struct SsbOutcome {
    /// The optimal SSB path, unless S and T were never connected.
    pub best: Option<SsbBest>,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Total number of edges eliminated.
    pub edges_removed: usize,
    /// Why the loop stopped.
    pub termination: Termination,
    /// Per-iteration trace (only when `record_trace` is set).
    pub trace: Vec<SsbIteration>,
}

/// Runs the SSB algorithm between `source` and `target`.
///
/// The search *consumes* edge liveness (eliminated edges stay eliminated);
/// callers who need the graph back take a [`Dwg::snapshot`] first, or call
/// [`Dwg::revive_all`] afterwards (O(1)) when the graph started fully
/// alive. This mirrors the paper's formulation, where each iteration works
/// on the reduced graph `Gᵢ`.
///
/// Convenience wrapper over [`ssb_search_in`] with a throwaway workspace.
pub fn ssb_search(g: &mut Dwg, source: NodeId, target: NodeId, cfg: &SsbConfig) -> SsbOutcome {
    ssb_search_in(g, source, target, cfg, &mut SolveScratch::new())
}

/// [`ssb_search`] running in a reusable [`SolveScratch`]: the per-iteration
/// Dijkstra runs and the elimination sweeps reuse the workspace buffers, so
/// a steady-state caller allocates only for the returned best path (and the
/// trace, when requested).
pub fn ssb_search_in(
    g: &mut Dwg,
    source: NodeId,
    target: NodeId,
    cfg: &SsbConfig,
    ws: &mut SolveScratch,
) -> SsbOutcome {
    let mut best: Option<SsbBest> = None;
    let mut best_ssb: ScaledSsb = SSB_INFINITY;
    let mut iterations = 0usize;
    let mut edges_removed = 0usize;
    let mut trace = Vec::new();

    let termination = loop {
        if iterations >= cfg.max_iterations {
            break Termination::IterationCap;
        }
        let Some(sp) = shortest_path_in(g, source, target, ws) else {
            break Termination::Disconnected;
        };
        iterations += 1;
        let s = sp.s_weight;
        let b = sp.path.b_weight(g);
        let ssb = cfg.lambda.ssb_scaled(s, b);
        let improved = ssb < best_ssb;
        if improved {
            best_ssb = ssb;
            best = Some(SsbBest {
                path: sp.path.clone(),
                s,
                b,
                ssb,
            });
        }

        // Paper termination: "the S weight of Pᵢ is greater than the current
        // SSB_can" — once λ·S alone reaches the candidate, no remaining path
        // can strictly improve (their S weights only grow).
        if cfg.lambda.s_scaled(s) >= best_ssb {
            if cfg.record_trace {
                trace.push(SsbIteration {
                    path: sp.path,
                    s,
                    b,
                    ssb,
                    improved,
                    removed: Vec::new(),
                    stall_fallback: false,
                });
            }
            break Termination::SBound;
        }

        // Elimination step (edge ids collected into the reusable buffer).
        let strict_first = cfg.rule == EliminationRule::Strict;
        let mut buf = std::mem::take(&mut ws.edge_buf);
        collect_removable_into(g, b, /*strict=*/ strict_first, &mut buf);
        let mut stall_fallback = false;
        if buf.is_empty() && strict_first {
            stall_fallback = true;
            collect_removable_into(g, b, /*strict=*/ false, &mut buf);
        }
        debug_assert!(
            !buf.is_empty(),
            "elimination must make progress (β≥B(P) holds for P's max-β edge)"
        );
        for &e in &buf {
            g.kill_edge(EdgeId(e));
        }
        edges_removed += buf.len();
        if cfg.record_trace {
            trace.push(SsbIteration {
                path: sp.path,
                s,
                b,
                ssb,
                improved,
                removed: buf.iter().copied().map(EdgeId).collect(),
                stall_fallback,
            });
        }
        ws.edge_buf = buf;
    };

    SsbOutcome {
        best,
        iterations,
        edges_removed,
        termination,
        trace,
    }
}

fn collect_removable_into(g: &Dwg, b: Cost, strict: bool, out: &mut Vec<u32>) {
    out.clear();
    out.extend(
        g.alive_edges()
            .filter(|(_, e)| if strict { e.beta > b } else { e.beta >= b })
            .map(|(id, _)| id.0),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::optimal_ssb_by_enumeration;

    fn c(v: u64) -> Cost {
        Cost::new(v)
    }

    /// The diamond from the enumerate tests.
    fn diamond() -> Dwg {
        let mut g = Dwg::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), c(1), c(9));
        g.add_edge(NodeId(1), NodeId(3), c(1), c(1));
        g.add_edge(NodeId(0), NodeId(2), c(2), c(2));
        g.add_edge(NodeId(2), NodeId(3), c(2), c(2));
        g.add_edge(NodeId(0), NodeId(3), c(10), c(1));
        g
    }

    #[test]
    fn diamond_matches_oracle() {
        let mut g = diamond();
        let oracle = optimal_ssb_by_enumeration(&g, NodeId(0), NodeId(3), Lambda::HALF, 100)
            .unwrap()
            .unwrap();
        let out = ssb_search(&mut g, NodeId(0), NodeId(3), &SsbConfig::default());
        let best = out.best.unwrap();
        assert_eq!(best.ssb, oracle.1);
        assert_eq!(best.ssb, 6);
    }

    #[test]
    fn strict_rule_also_matches_oracle() {
        let mut g = diamond();
        let cfg = SsbConfig {
            rule: EliminationRule::Strict,
            ..SsbConfig::default()
        };
        let out = ssb_search(&mut g, NodeId(0), NodeId(3), &cfg);
        assert_eq!(out.best.unwrap().ssb, 6);
    }

    #[test]
    fn disconnected_yields_no_best() {
        let mut g = Dwg::with_nodes(2);
        let out = ssb_search(&mut g, NodeId(0), NodeId(1), &SsbConfig::default());
        assert!(out.best.is_none());
        assert_eq!(out.termination, Termination::Disconnected);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn single_edge_graph() {
        let mut g = Dwg::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), c(3), c(7));
        let out = ssb_search(&mut g, NodeId(0), NodeId(1), &SsbConfig::default());
        let best = out.best.unwrap();
        assert_eq!(best.s, c(3));
        assert_eq!(best.b, c(7));
        assert_eq!(best.ssb, 10);
    }

    #[test]
    fn lambda_one_reduces_to_shortest_path() {
        let mut g = diamond();
        let cfg = SsbConfig {
            lambda: Lambda::ONE,
            ..SsbConfig::default()
        };
        let out = ssb_search(&mut g, NodeId(0), NodeId(3), &cfg);
        let best = out.best.unwrap();
        // min S = 2 via 0→1→3 regardless of the β=9 edge.
        assert_eq!(best.s, c(2));
        assert_eq!(best.ssb, 2);
        // λ=1 terminates immediately on the S bound.
        assert_eq!(out.iterations, 1);
        assert_eq!(out.termination, Termination::SBound);
    }

    #[test]
    fn lambda_zero_minimises_pure_bottleneck() {
        let mut g = diamond();
        let cfg = SsbConfig {
            lambda: Lambda::ZERO,
            ..SsbConfig::default()
        };
        let out = ssb_search(&mut g, NodeId(0), NodeId(3), &cfg);
        // Best achievable max-β: the direct edge with β=1.
        assert_eq!(out.best.unwrap().ssb, 1);
    }

    #[test]
    fn zero_beta_graph_terminates() {
        let mut g = Dwg::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), c(1), c(0));
        g.add_edge(NodeId(1), NodeId(2), c(1), c(0));
        let out = ssb_search(&mut g, NodeId(0), NodeId(2), &SsbConfig::default());
        let best = out.best.unwrap();
        assert_eq!(best.b, c(0));
        assert_eq!(best.ssb, 2);
    }

    #[test]
    fn iteration_cap_is_honoured() {
        let mut g = diamond();
        let cfg = SsbConfig {
            max_iterations: 0,
            ..SsbConfig::default()
        };
        let out = ssb_search(&mut g, NodeId(0), NodeId(3), &cfg);
        assert_eq!(out.termination, Termination::IterationCap);
        assert!(out.best.is_none());
    }

    #[test]
    fn trace_is_recorded_when_requested() {
        let mut g = diamond();
        let cfg = SsbConfig {
            record_trace: true,
            ..SsbConfig::default()
        };
        let out = ssb_search(&mut g, NodeId(0), NodeId(3), &cfg);
        assert_eq!(out.trace.len(), out.iterations);
        assert!(out.trace.iter().any(|it| it.improved));
    }

    #[test]
    fn repeated_solves_with_revive_and_scratch_are_identical() {
        // One graph, one workspace, many solves: revive_all() (O(1)) between
        // runs must reproduce the fresh-graph answer bit for bit.
        let mut g = diamond();
        let mut ws = SolveScratch::new();
        let fresh = ssb_search(&mut diamond(), NodeId(0), NodeId(3), &SsbConfig::default());
        let expect = fresh.best.unwrap();
        for _ in 0..5 {
            let out = ssb_search_in(&mut g, NodeId(0), NodeId(3), &SsbConfig::default(), &mut ws);
            let best = out.best.unwrap();
            assert_eq!(best.ssb, expect.ssb);
            assert_eq!(best.path.edges, expect.path.edges);
            assert_eq!(out.iterations, fresh.iterations);
            g.revive_all();
        }
    }

    #[test]
    fn parallel_edge_multigraph() {
        let mut g = Dwg::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), c(1), c(100));
        g.add_edge(NodeId(0), NodeId(1), c(50), c(1));
        let out = ssb_search(&mut g, NodeId(0), NodeId(1), &SsbConfig::default());
        // SSB options: 1+100=101 vs 50+1=51.
        assert_eq!(out.best.unwrap().ssb, 51);
    }
}
