//! The doubly weighted multigraph (DWG) of the paper's Section 4.1.
//!
//! A DWG carries two ordered non-negative weights on every edge: a *sum*
//! weight σ (accumulated along a path into the S weight) and a *bottleneck*
//! weight β (combined along a path into the B weight). Both the paper's SSB
//! algorithm and Bokhari's SB algorithm work by repeatedly searching paths
//! and *eliminating* edges, so the graph supports O(1) edge disabling with
//! snapshot/restore instead of physically mutating adjacency.
//!
//! Parallel edges are first-class: Bokhari-style assignment graphs are
//! multigraphs (a chain of tree edges with the same leaf span yields several
//! parallel edges between the same pair of faces).

use crate::{Cost, GraphError};
use serde::{Deserialize, Serialize};

/// Identifier of a node in a [`Dwg`]; indexes are dense and start at zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of an edge in a [`Dwg`]; indexes are dense and start at zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The node index as a usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge index as a usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Edge payload: endpoints, the two weights, and a caller-defined tag.
///
/// The tag is opaque to the search algorithms; the assignment layer uses it
/// to point back at the CRU-tree edge a dual edge crosses, and to carry the
/// satellite colour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Sum weight σ(e).
    pub sigma: Cost,
    /// Bottleneck weight β(e).
    pub beta: Cost,
    /// Caller-defined payload (e.g. colour, tree-edge id).
    pub tag: u64,
}

/// A directed doubly weighted multigraph with O(1) edge disabling.
///
/// Undirected graphs are modelled as twin arc pairs created with
/// [`Dwg::add_undirected_edge`]; killing either twin kills both, so the
/// elimination steps of the SSB/SB algorithms behave as on an undirected
/// graph.
///
/// ## Generation-stamped liveness
///
/// Liveness is tracked by *generation stamps* rather than booleans: killing
/// an edge stamps it with the current generation, and an edge is alive iff
/// its stamp differs from the generation. [`Dwg::revive_all`] therefore
/// runs in O(1) — it just bumps the generation — so one prepared graph can
/// be solved by the destructive SSB/SB elimination loops repeatedly without
/// rebuilding or O(|E|) clearing between solves.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dwg {
    edges: Vec<Edge>,
    /// Out-adjacency: for each node, the edge ids leaving it.
    adj: Vec<Vec<EdgeId>>,
    /// Generation in which each edge was eliminated; an edge is alive iff
    /// `killed_in[e] != generation` (0 = never, generations start at 1).
    killed_in: Vec<u32>,
    /// Current liveness generation (≥ 1).
    generation: u32,
    alive_count: usize,
    /// Twin arc of an undirected pair, if any.
    twin: Vec<Option<EdgeId>>,
}

/// A saved liveness state, restorable with [`Dwg::restore`].
#[derive(Clone, Debug)]
pub struct AliveSnapshot {
    alive: Vec<bool>,
    alive_count: usize,
}

impl Dwg {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Dwg {
            edges: Vec::new(),
            adj: Vec::new(),
            killed_in: Vec::new(),
            generation: 1,
            alive_count: 0,
            twin: Vec::new(),
        }
    }

    /// Creates an empty graph with `n` pre-allocated nodes.
    pub fn with_nodes(n: usize) -> Self {
        let mut g = Dwg::new();
        g.add_nodes(n);
        g
    }

    /// Adds one node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.adj.len() as u32);
        self.adj.push(Vec::new());
        id
    }

    /// Adds `n` nodes; returns the id of the first.
    pub fn add_nodes(&mut self, n: usize) -> NodeId {
        let first = NodeId(self.adj.len() as u32);
        for _ in 0..n {
            self.adj.push(Vec::new());
        }
        first
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges ever added (dead or alive).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of edges currently alive.
    #[inline]
    pub fn num_alive(&self) -> usize {
        self.alive_count
    }

    /// Adds a directed edge with tag 0.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, sigma: Cost, beta: Cost) -> EdgeId {
        self.add_edge_tagged(from, to, sigma, beta, 0)
    }

    /// Adds a directed edge carrying a caller-defined tag.
    ///
    /// # Panics
    /// Panics if an endpoint does not exist (construction-time programming
    /// error, unlike search-time lookups which return [`GraphError`]).
    pub fn add_edge_tagged(
        &mut self,
        from: NodeId,
        to: NodeId,
        sigma: Cost,
        beta: Cost,
        tag: u64,
    ) -> EdgeId {
        assert!(
            from.index() < self.adj.len() && to.index() < self.adj.len(),
            "edge endpoint out of range"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            from,
            to,
            sigma,
            beta,
            tag,
        });
        self.adj[from.index()].push(id);
        self.killed_in.push(0);
        self.alive_count += 1;
        self.twin.push(None);
        id
    }

    /// Adds an undirected edge as a twin pair of arcs sharing weights and
    /// tag. Returns `(forward, backward)`. Killing either arc kills both.
    pub fn add_undirected_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        sigma: Cost,
        beta: Cost,
        tag: u64,
    ) -> (EdgeId, EdgeId) {
        let fwd = self.add_edge_tagged(a, b, sigma, beta, tag);
        let bwd = self.add_edge_tagged(b, a, sigma, beta, tag);
        self.twin[fwd.index()] = Some(bwd);
        self.twin[bwd.index()] = Some(fwd);
        (fwd, bwd)
    }

    /// Looks up an edge payload.
    pub fn edge(&self, e: EdgeId) -> Result<&Edge, GraphError> {
        self.edges.get(e.index()).ok_or(GraphError::EdgeOutOfRange {
            edge: e.0,
            len: self.edges.len() as u32,
        })
    }

    /// Unchecked edge lookup for hot loops; panics on a bad id.
    #[inline]
    pub fn edge_unchecked(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// The twin arc of an undirected pair, if `e` belongs to one.
    pub fn twin_of(&self, e: EdgeId) -> Option<EdgeId> {
        self.twin.get(e.index()).copied().flatten()
    }

    /// Whether the edge is currently alive.
    #[inline]
    pub fn is_alive(&self, e: EdgeId) -> bool {
        self.killed_in[e.index()] != self.generation
    }

    /// The current liveness generation (bumped by [`Dwg::revive_all`]).
    #[inline]
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Disables an edge (and its twin, for undirected pairs). Idempotent.
    pub fn kill_edge(&mut self, e: EdgeId) {
        self.kill_one(e);
        if let Some(t) = self.twin_of(e) {
            self.kill_one(t);
        }
    }

    fn kill_one(&mut self, e: EdgeId) {
        if self.is_alive(e) {
            self.killed_in[e.index()] = self.generation;
            self.alive_count -= 1;
        }
    }

    /// Re-enables every edge in O(1) by starting a new liveness generation.
    pub fn revive_all(&mut self) {
        if self.generation == u32::MAX {
            // Stamp wrap: reset once every 2³²−1 generations.
            self.killed_in.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        self.alive_count = self.killed_in.len();
    }

    /// Captures the current liveness state.
    pub fn snapshot(&self) -> AliveSnapshot {
        AliveSnapshot {
            alive: (0..self.edges.len())
                .map(|i| self.is_alive(EdgeId(i as u32)))
                .collect(),
            alive_count: self.alive_count,
        }
    }

    /// Restores a liveness state captured by [`Dwg::snapshot`].
    ///
    /// # Panics
    /// Panics if edges were added after the snapshot was taken.
    pub fn restore(&mut self, snap: &AliveSnapshot) {
        assert_eq!(
            snap.alive.len(),
            self.killed_in.len(),
            "snapshot taken on a graph with a different edge count"
        );
        self.revive_all();
        for (i, &alive) in snap.alive.iter().enumerate() {
            if !alive {
                // Direct stamp: twins are represented individually in the
                // snapshot, so no twin propagation here.
                self.killed_in[i] = self.generation;
                self.alive_count -= 1;
            }
        }
        debug_assert_eq!(self.alive_count, snap.alive_count);
    }

    /// Iterates the *alive* out-edges of a node.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.adj[n.index()]
            .iter()
            .copied()
            .filter(|e| self.is_alive(*e))
            .map(move |e| (e, &self.edges[e.index()]))
    }

    /// Iterates *all* out-edges of a node, including eliminated ones.
    pub fn out_edges_all(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.adj[n.index()]
            .iter()
            .copied()
            .map(move |e| (e, &self.edges[e.index()]))
    }

    /// Iterates every alive edge in id order.
    pub fn alive_edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(i, _)| self.killed_in[*i] != self.generation)
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Iterates every edge in id order, dead or alive.
    pub fn all_edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Validates a node id.
    pub fn check_node(&self, n: NodeId) -> Result<(), GraphError> {
        if n.index() < self.adj.len() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: n.0,
                len: self.adj.len() as u32,
            })
        }
    }
}

impl Default for Dwg {
    fn default() -> Self {
        Dwg::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: u64) -> Cost {
        Cost::new(v)
    }

    #[test]
    fn build_and_query() {
        let mut g = Dwg::with_nodes(3);
        let e0 = g.add_edge(NodeId(0), NodeId(1), c(5), c(10));
        let e1 = g.add_edge_tagged(NodeId(1), NodeId(2), c(4), c(20), 7);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_alive(), 2);
        assert_eq!(g.edge(e1).unwrap().tag, 7);
        assert_eq!(g.edge(e0).unwrap().sigma, c(5));
        let outs: Vec<_> = g.out_edges(NodeId(0)).map(|(id, _)| id).collect();
        assert_eq!(outs, vec![e0]);
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let mut g = Dwg::with_nodes(2);
        let e0 = g.add_edge(NodeId(0), NodeId(1), c(1), c(1));
        let e1 = g.add_edge(NodeId(0), NodeId(1), c(1), c(1));
        assert_ne!(e0, e1);
        assert_eq!(g.out_edges(NodeId(0)).count(), 2);
    }

    #[test]
    fn kill_and_revive() {
        let mut g = Dwg::with_nodes(2);
        let e = g.add_edge(NodeId(0), NodeId(1), c(1), c(2));
        assert!(g.is_alive(e));
        g.kill_edge(e);
        assert!(!g.is_alive(e));
        assert_eq!(g.num_alive(), 0);
        assert_eq!(g.out_edges(NodeId(0)).count(), 0);
        g.kill_edge(e); // idempotent
        assert_eq!(g.num_alive(), 0);
        g.revive_all();
        assert!(g.is_alive(e));
        assert_eq!(g.num_alive(), 1);
    }

    #[test]
    fn undirected_twins_die_together() {
        let mut g = Dwg::with_nodes(2);
        let (f, b) = g.add_undirected_edge(NodeId(0), NodeId(1), c(3), c(4), 9);
        assert_eq!(g.twin_of(f), Some(b));
        assert_eq!(g.twin_of(b), Some(f));
        g.kill_edge(b);
        assert!(!g.is_alive(f));
        assert!(!g.is_alive(b));
        assert_eq!(g.num_alive(), 0);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut g = Dwg::with_nodes(2);
        let e0 = g.add_edge(NodeId(0), NodeId(1), c(1), c(1));
        let e1 = g.add_edge(NodeId(0), NodeId(1), c(2), c(2));
        let snap = g.snapshot();
        g.kill_edge(e0);
        g.kill_edge(e1);
        assert_eq!(g.num_alive(), 0);
        g.restore(&snap);
        assert_eq!(g.num_alive(), 2);
        assert!(g.is_alive(e0) && g.is_alive(e1));
    }

    #[test]
    fn out_of_range_lookups_error() {
        let g = Dwg::with_nodes(1);
        assert!(matches!(
            g.edge(EdgeId(0)),
            Err(GraphError::EdgeOutOfRange { .. })
        ));
        assert!(matches!(
            g.check_node(NodeId(5)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(g.check_node(NodeId(0)).is_ok());
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn bad_endpoint_panics_at_construction() {
        let mut g = Dwg::with_nodes(1);
        g.add_edge(NodeId(0), NodeId(3), c(1), c(1));
    }

    #[test]
    fn revive_all_bumps_generation_without_touching_stamps() {
        let mut g = Dwg::with_nodes(2);
        let e0 = g.add_edge(NodeId(0), NodeId(1), c(1), c(1));
        let e1 = g.add_edge(NodeId(0), NodeId(1), c(2), c(2));
        let gen0 = g.generation();
        g.kill_edge(e0);
        assert!(!g.is_alive(e0) && g.is_alive(e1));
        g.revive_all();
        assert_eq!(g.generation(), gen0 + 1);
        assert!(g.is_alive(e0) && g.is_alive(e1));
        assert_eq!(g.num_alive(), 2);
        // Edges added after a revive are alive in the new generation.
        let e2 = g.add_edge(NodeId(1), NodeId(0), c(3), c(3));
        assert!(g.is_alive(e2));
        assert_eq!(g.num_alive(), 3);
    }

    #[test]
    fn snapshot_survives_generation_bumps() {
        let mut g = Dwg::with_nodes(2);
        let e0 = g.add_edge(NodeId(0), NodeId(1), c(1), c(1));
        let e1 = g.add_edge(NodeId(0), NodeId(1), c(2), c(2));
        g.kill_edge(e0);
        let snap = g.snapshot(); // e0 dead, e1 alive
        g.revive_all();
        g.kill_edge(e1);
        g.restore(&snap);
        assert!(!g.is_alive(e0));
        assert!(g.is_alive(e1));
        assert_eq!(g.num_alive(), 1);
    }
}
