//! Constructors for the paper's worked examples on plain DWGs.

use crate::{Cost, Dwg, NodeId};

/// The doubly weighted graph of the paper's **Figure 4**.
///
/// Three nodes `S → M → T`; edge weights are written `<σ, β>` exactly as in
/// the figure:
///
/// ```text
///   S ──<5,10>──┐            ┌──<4,20>── T
///   S ──<6,8>───┤            ├──<5,10>── T
///   S ──<15,10>─┤── M ───────├──<6,12>── T
///   S ──<20,9>──┘            └──<27,8>── T
/// ```
///
/// Running the SSB algorithm with λ = ½ (SSB printed as S + B) reproduces
/// the figure's trace: candidate ∞ → 29 → 20, termination in iteration 3
/// with a min-S path of S weight 33, optimal path `<5,10>-<5,10>` with SSB
/// weight 20.
pub fn fig4_graph() -> (Dwg, NodeId, NodeId) {
    let mut g = Dwg::with_nodes(3);
    let (s, m, t) = (NodeId(0), NodeId(1), NodeId(2));
    let c = Cost::new;
    // Left hop S→M.
    g.add_edge(s, m, c(5), c(10));
    g.add_edge(s, m, c(6), c(8));
    g.add_edge(s, m, c(15), c(10));
    g.add_edge(s, m, c(20), c(9));
    // Right hop M→T.
    g.add_edge(m, t, c(4), c(20));
    g.add_edge(m, t, c(5), c(10));
    g.add_edge(m, t, c(6), c(12));
    g.add_edge(m, t, c(27), c(8));
    (g, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ssb_search, SsbConfig, Termination};

    /// The headline reproduction: the exact Figure 4 trace.
    #[test]
    fn figure4_trace_is_reproduced_exactly() {
        let (mut g, s, t) = fig4_graph();
        let cfg = SsbConfig {
            record_trace: true,
            ..SsbConfig::default()
        };
        let out = ssb_search(&mut g, s, t, &cfg);

        // "three iterations are executed"
        assert_eq!(out.iterations, 3);
        assert_eq!(out.termination, Termination::SBound);

        // Iteration 1: min-S path <5,10>-<4,20>: S=9, B=20, SSB ∞→29.
        let it1 = &out.trace[0];
        assert_eq!(it1.s, Cost::new(9));
        assert_eq!(it1.b, Cost::new(20));
        assert_eq!(it1.ssb, 29);
        assert!(it1.improved);

        // Iteration 2: min-S path <5,10>-<5,10>: S=10, B=10, SSB 29→20.
        let it2 = &out.trace[1];
        assert_eq!(it2.s, Cost::new(10));
        assert_eq!(it2.b, Cost::new(10));
        assert_eq!(it2.ssb, 20);
        assert!(it2.improved);

        // Iteration 3: "p.S_weight = 33 — iteration terminated".
        let it3 = &out.trace[2];
        assert_eq!(it3.s, Cost::new(33));
        assert!(!it3.improved);

        // "optimal SSB path (<5,10>-<5,10>) with SSB weight of 20"
        let best = out.best.unwrap();
        assert_eq!(best.ssb, 20);
        assert_eq!(best.s, Cost::new(10));
        assert_eq!(best.b, Cost::new(10));
        let sigmas: Vec<u64> = best
            .path
            .edges
            .iter()
            .map(|&e| g.edge_unchecked(e).sigma.ticks())
            .collect();
        let betas: Vec<u64> = best
            .path
            .edges
            .iter()
            .map(|&e| g.edge_unchecked(e).beta.ticks())
            .collect();
        assert_eq!(sigmas, vec![5, 5]);
        assert_eq!(betas, vec![10, 10]);
    }

    #[test]
    fn figure4_matches_enumeration_oracle() {
        let (g, s, t) = fig4_graph();
        let oracle =
            crate::enumerate::optimal_ssb_by_enumeration(&g, s, t, crate::Lambda::HALF, 1000)
                .unwrap()
                .unwrap();
        assert_eq!(oracle.1, 20);
    }

    #[test]
    fn figure4_has_sixteen_paths() {
        let (g, s, t) = fig4_graph();
        let paths = crate::enumerate::all_simple_paths(&g, s, t, 1000).unwrap();
        assert_eq!(paths.len(), 16); // 4 left × 4 right parallel edges
    }
}
