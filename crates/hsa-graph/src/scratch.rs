//! Reusable solver workspace — the allocation-free core of repeated solves.
//!
//! Every Dijkstra run used to allocate three fresh `vec!`s (dist, pred,
//! done) plus a `BinaryHeap`; under batch traffic those allocations dominate
//! small-instance solve time. [`SolveScratch`] owns the buffers once and
//! recycles them with **epoch stamping**: instead of clearing O(|V|) memory
//! between runs, a run bumps a generation counter and treats any slot whose
//! stamp differs from the current epoch as "unset". Resetting the workspace
//! is therefore O(1) regardless of how large previous problems were.
//!
//! The same buffers serve every search in the workspace family: the generic
//! Dijkstra variants ([`crate::dijkstra::shortest_path_in`]), the SSB/SB
//! candidate-eliminate loops ([`crate::ssb_search_in`],
//! [`crate::sb_search_in`]), and the gap-DAG DP of the coloured solver in
//! `hsa-assign`. A scratch is cheap to create, `Send`, and intended to live
//! one-per-worker-thread in batch services (see the `hsa-engine` crate).

use crate::Cost;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel meaning "no predecessor recorded" (the search source).
const NO_PRED: u32 = u32::MAX;

/// A reusable workspace for shortest-path style searches.
///
/// Buffers grow monotonically to the largest instance seen and are reused
/// across calls; [`SolveScratch::begin`] starts a new run in O(1) by
/// bumping the internal epoch.
#[derive(Clone, Debug, Default)]
pub struct SolveScratch {
    /// Current run's generation stamp.
    epoch: u32,
    /// Per-slot stamp; `dist`/`pred` are valid only where `stamp == epoch`.
    stamp: Vec<u32>,
    /// Tentative distances (valid where stamped).
    dist: Vec<Cost>,
    /// Predecessor edge index (valid where stamped; `NO_PRED` = none).
    pred: Vec<u32>,
    /// Settled stamp; a slot is settled iff `done == epoch`.
    done: Vec<u32>,
    /// The frontier heap, cleared (not reallocated) per run.
    heap: BinaryHeap<Reverse<(Cost, u32)>>,
    /// Free-form edge-index buffer for elimination sweeps.
    pub edge_buf: Vec<u32>,
    /// Free-form cost buffer (e.g. per-colour load sums).
    pub cost_buf: Vec<Cost>,
}

impl SolveScratch {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        SolveScratch::default()
    }

    /// Creates a workspace pre-sized for `n`-node searches.
    pub fn with_capacity(n: usize) -> Self {
        let mut ws = SolveScratch::default();
        ws.begin(n);
        ws
    }

    /// Starts a new search over `n` slots. O(1) unless the buffers must
    /// grow; previously written distances become invisible via the epoch
    /// bump rather than by clearing.
    pub fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, Cost::MAX);
            self.pred.resize(n, NO_PRED);
            self.done.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            // Generation wrap: clear the stamps once every 2³²−1 runs.
            self.stamp.fill(0);
            self.done.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.heap.clear();
    }

    /// The tentative distance of slot `i` (`Cost::MAX` when unset).
    #[inline]
    pub fn dist(&self, i: usize) -> Cost {
        if self.stamp[i] == self.epoch {
            self.dist[i]
        } else {
            Cost::MAX
        }
    }

    /// Seeds slot `i` with distance `d` and no predecessor.
    #[inline]
    pub fn seed(&mut self, i: usize, d: Cost) {
        self.stamp[i] = self.epoch;
        self.dist[i] = d;
        self.pred[i] = NO_PRED;
    }

    /// Relaxes slot `i` to distance `d` via predecessor edge `pred`;
    /// returns `true` when `d` strictly improved the tentative distance.
    #[inline]
    pub fn improve(&mut self, i: usize, d: Cost, pred: u32) -> bool {
        if d < self.dist(i) {
            self.stamp[i] = self.epoch;
            self.dist[i] = d;
            self.pred[i] = pred;
            true
        } else {
            false
        }
    }

    /// The predecessor edge index recorded for slot `i`, if any.
    #[inline]
    pub fn pred(&self, i: usize) -> Option<u32> {
        if self.stamp[i] == self.epoch && self.pred[i] != NO_PRED {
            Some(self.pred[i])
        } else {
            None
        }
    }

    /// Whether slot `i` is settled in the current run.
    #[inline]
    pub fn is_done(&self, i: usize) -> bool {
        self.done[i] == self.epoch
    }

    /// Settles slot `i`.
    #[inline]
    pub fn mark_done(&mut self, i: usize) {
        self.done[i] = self.epoch;
    }

    /// Pushes a `(distance, node)` frontier entry.
    #[inline]
    pub fn push(&mut self, d: Cost, node: u32) {
        self.heap.push(Reverse((d, node)));
    }

    /// Pops the closest frontier entry.
    #[inline]
    pub fn pop(&mut self) -> Option<(Cost, u32)> {
        self.heap.pop().map(|Reverse(x)| x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_bump_invalidates_previous_run() {
        let mut ws = SolveScratch::new();
        ws.begin(4);
        ws.seed(0, Cost::new(0));
        assert!(ws.improve(2, Cost::new(7), 5));
        ws.mark_done(2);
        assert_eq!(ws.dist(2), Cost::new(7));
        assert_eq!(ws.pred(2), Some(5));
        assert!(ws.is_done(2));

        ws.begin(4);
        assert_eq!(ws.dist(2), Cost::MAX);
        assert_eq!(ws.pred(2), None);
        assert!(!ws.is_done(2));
        assert_eq!(ws.dist(0), Cost::MAX);
    }

    #[test]
    fn improve_requires_strict_progress() {
        let mut ws = SolveScratch::new();
        ws.begin(2);
        assert!(ws.improve(1, Cost::new(5), 0));
        assert!(!ws.improve(1, Cost::new(5), 1));
        assert!(!ws.improve(1, Cost::new(9), 2));
        assert!(ws.improve(1, Cost::new(4), 3));
        assert_eq!(ws.pred(1), Some(3));
    }

    #[test]
    fn heap_orders_by_distance() {
        let mut ws = SolveScratch::new();
        ws.begin(1);
        ws.push(Cost::new(9), 1);
        ws.push(Cost::new(2), 2);
        ws.push(Cost::new(5), 3);
        assert_eq!(ws.pop(), Some((Cost::new(2), 2)));
        assert_eq!(ws.pop(), Some((Cost::new(5), 3)));
        assert_eq!(ws.pop(), Some((Cost::new(9), 1)));
        assert_eq!(ws.pop(), None);
        ws.push(Cost::new(1), 4);
        ws.begin(1);
        assert_eq!(ws.pop(), None, "begin() clears the frontier");
    }

    #[test]
    fn buffers_grow_to_largest_instance() {
        let mut ws = SolveScratch::new();
        ws.begin(2);
        ws.seed(1, Cost::new(3));
        ws.begin(10);
        assert_eq!(ws.dist(9), Cost::MAX);
        ws.begin(3); // shrinking requests keep the larger buffers
        assert_eq!(ws.dist(2), Cost::MAX);
    }

    #[test]
    fn seed_clears_predecessor() {
        let mut ws = SolveScratch::new();
        ws.begin(2);
        assert!(ws.improve(0, Cost::new(4), 7));
        ws.seed(0, Cost::ZERO);
        assert_eq!(ws.pred(0), None);
        assert_eq!(ws.dist(0), Cost::ZERO);
    }
}
