//! The piecewise-linear lower envelope of `(S, B)` candidates over λ ∈ [0, 1].
//!
//! For a fixed candidate (a path or a cut) with sum weight `S` and
//! bottleneck weight `B`, the SSB objective is *linear in λ*:
//! `f(λ) = λ·S + (1−λ)·B = B + λ·(S−B)`. Given the full (λ-independent)
//! candidate set that some exact solver minimises over, the optimum *as a
//! function of λ* is the lower envelope of those lines — a piecewise-linear
//! concave function with at most |candidates| segments, computable in one
//! `O(n log n)` pass instead of one solve per λ.
//!
//! Geometrically, a line is the point `(S, B)` and the envelope's segment
//! owners are exactly the vertices of the **lower-left convex hull** of the
//! point set (minimisers of the dot product with the weight vector
//! `(λ, 1−λ)`, which sweeps the closed positive quadrant as λ runs over
//! [0, 1]). Construction: Pareto-prune (B ascending, S strictly
//! descending), then a monotone-chain hull, then read the breakpoints off
//! consecutive hull vertices: the handover from `(S₁,B₁)` to `(S₂,B₂)`
//! (with `S₁ > S₂`, `B₁ < B₂`) happens at the exact rational
//! `λ* = (B₂−B₁) / ((B₂−B₁) + (S₁−S₂))`.
//!
//! Everything is exact integer arithmetic: breakpoints are reduced
//! rationals ([`LambdaQ`]) compared by cross-multiplication, so envelope
//! queries agree digit-for-digit with an independent solve at the same λ.

use crate::{Cost, Lambda, ScaledSsb};
use serde::{value, DeError, Deserialize, Serialize, Value};
use std::cmp::Ordering;

/// An exact rational λ ∈ [0, 1] with 64-bit numerator and denominator —
/// the breakpoint currency of [`LambdaEnvelope`].
///
/// Values are kept reduced; comparisons cross-multiply in 128 bits and are
/// exact. (Denominators beyond 2⁶⁴ — which would require bottleneck-weight
/// differences above 2⁶³ ticks — are halved into range; no realistic cost
/// model gets near that.)
#[derive(Clone, Copy, Debug)]
pub struct LambdaQ {
    num: u64,
    den: u64,
}

impl LambdaQ {
    /// λ = 0 (pure bottleneck objective).
    pub const ZERO: LambdaQ = LambdaQ { num: 0, den: 1 };
    /// λ = 1 (pure sum objective).
    pub const ONE: LambdaQ = LambdaQ { num: 1, den: 1 };

    /// Builds the reduced rational `num/den` (clamped into [0, 1]).
    pub fn new(num: u64, den: u64) -> LambdaQ {
        LambdaQ::reduced(num as u128, den.max(1) as u128)
    }

    fn reduced(num: u128, den: u128) -> LambdaQ {
        debug_assert!(den > 0);
        let num = num.min(den);
        let g = gcd(num, den).max(1);
        let (mut n, mut d) = (num / g, den / g);
        while d > u64::MAX as u128 {
            n >>= 1;
            d >>= 1;
        }
        LambdaQ {
            num: n as u64,
            den: (d as u64).max(1),
        }
    }

    /// The numerator (of the reduced form).
    #[inline]
    pub fn num(self) -> u64 {
        self.num
    }

    /// The denominator (of the reduced form).
    #[inline]
    pub fn den(self) -> u64 {
        self.den
    }

    /// The value as a float, for reporting only.
    pub fn as_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Converts into a [`Lambda`] when numerator and denominator fit u32.
    pub fn as_lambda(self) -> Option<Lambda> {
        if self.num <= u32::MAX as u64 && self.den <= u32::MAX as u64 {
            Lambda::new(self.num as u32, self.den as u32).ok()
        } else {
            None
        }
    }

    /// The exact midpoint of two rationals. When the exact denominator
    /// `2·aden·bden` would overflow 128 bits (possible only with both
    /// denominators near 2⁶⁴), the operands are halved into range first —
    /// the same lossy fallback [`LambdaQ`] documents for construction.
    pub fn midpoint(a: LambdaQ, b: LambdaQ) -> LambdaQ {
        let (mut an, mut ad) = (a.num as u128, a.den as u128);
        let (mut bn, mut bd) = (b.num as u128, b.den as u128);
        loop {
            let num = an
                .checked_mul(bd)
                .and_then(|x| bn.checked_mul(ad).and_then(|y| x.checked_add(y)));
            let den = ad.checked_mul(bd).and_then(|d| d.checked_mul(2));
            if let (Some(num), Some(den)) = (num, den) {
                return LambdaQ::reduced(num, den);
            }
            an >>= 1;
            ad = (ad >> 1).max(1);
            bn >>= 1;
            bd = (bd >> 1).max(1);
        }
    }

    /// Exact comparison against a [`Lambda`].
    pub fn cmp_lambda(self, l: Lambda) -> Ordering {
        (self.num as u128 * l.den() as u128).cmp(&(l.num() as u128 * self.den as u128))
    }
}

impl PartialEq for LambdaQ {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for LambdaQ {}

impl PartialOrd for LambdaQ {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LambdaQ {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num as u128 * other.den as u128).cmp(&(other.num as u128 * self.den as u128))
    }
}

impl std::fmt::Display for LambdaQ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Serialize for LambdaQ {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("num".to_string(), self.num.to_value()),
            ("den".to_string(), self.den.to_value()),
        ])
    }
}

// Deserialisation funnels through [`LambdaQ::new`], so incoming rationals
// are re-reduced and clamped into [0, 1] — values we encoded ourselves are
// already reduced and round-trip bit-for-bit.
impl Deserialize for LambdaQ {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| DeError::custom(format!("expected LambdaQ map, got {v:?}")))?;
        let num = u64::from_value(value::field(m, "num")?)?;
        let den = u64::from_value(value::field(m, "den")?)?;
        Ok(LambdaQ::new(num, den))
    }
}

/// One maximal λ interval on which a single candidate is optimal.
#[derive(Clone, Debug)]
pub struct EnvelopeSegment<T> {
    /// Inclusive left end of the interval.
    pub lo: LambdaQ,
    /// Inclusive right end of the interval (the next segment's `lo`).
    pub hi: LambdaQ,
    /// The candidate's sum weight.
    pub s: Cost,
    /// The candidate's bottleneck weight.
    pub b: Cost,
    /// The candidate itself (a path, a cut, …).
    pub payload: T,
}

impl<T> EnvelopeSegment<T> {
    /// The segment's exact midpoint λ.
    pub fn midpoint(&self) -> LambdaQ {
        LambdaQ::midpoint(self.lo, self.hi)
    }
}

impl<T: Serialize> Serialize for EnvelopeSegment<T> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("lo".to_string(), self.lo.to_value()),
            ("hi".to_string(), self.hi.to_value()),
            ("s".to_string(), self.s.to_value()),
            ("b".to_string(), self.b.to_value()),
            ("payload".to_string(), self.payload.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for EnvelopeSegment<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| DeError::custom(format!("expected EnvelopeSegment map, got {v:?}")))?;
        Ok(EnvelopeSegment {
            lo: LambdaQ::from_value(value::field(m, "lo")?)?,
            hi: LambdaQ::from_value(value::field(m, "hi")?)?,
            s: Cost::from_value(value::field(m, "s")?)?,
            b: Cost::from_value(value::field(m, "b")?)?,
            payload: T::from_value(value::field(m, "payload")?)?,
        })
    }
}

/// The lower envelope: λ-ordered segments covering [0, 1] without gaps.
#[derive(Clone, Debug)]
pub struct LambdaEnvelope<T> {
    segments: Vec<EnvelopeSegment<T>>,
}

impl<T> LambdaEnvelope<T> {
    /// The segments, ordered by λ from 0 to 1.
    pub fn segments(&self) -> &[EnvelopeSegment<T>] {
        &self.segments
    }

    /// Number of segments (= number of envelope-optimal candidates).
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Always false — an envelope has at least one segment.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The interior breakpoints (segment boundaries strictly inside (0, 1)).
    pub fn breakpoints(&self) -> Vec<LambdaQ> {
        self.segments[..self.segments.len() - 1]
            .iter()
            .map(|seg| seg.hi)
            .collect()
    }

    /// Number of interior breakpoints (= [`Self::len`] − 1) without
    /// materialising them — what trend reports record.
    pub fn num_breakpoints(&self) -> usize {
        self.segments.len() - 1
    }

    /// The segment owning `lambda` (at a breakpoint: the left segment, whose
    /// value ties with the right one anyway).
    pub fn segment_at(&self, lambda: Lambda) -> &EnvelopeSegment<T> {
        self.segments
            .iter()
            .find(|seg| seg.hi.cmp_lambda(lambda) != Ordering::Less)
            .unwrap_or_else(|| self.segments.last().expect("envelope is never empty"))
    }

    /// The envelope's exact scaled objective `λ·S + (1−λ)·B` at `lambda`.
    pub fn objective_at(&self, lambda: Lambda) -> ScaledSsb {
        let seg = self.segment_at(lambda);
        lambda.ssb_scaled(seg.s, seg.b)
    }

    /// Maps every segment's payload, preserving the segment structure.
    /// Lets callers build the envelope over cheap keys (indexes, picks) and
    /// materialise expensive payloads only for the few surviving segments.
    pub fn try_map<U, E>(
        self,
        mut f: impl FnMut(T) -> Result<U, E>,
    ) -> Result<LambdaEnvelope<U>, E> {
        let segments = self
            .segments
            .into_iter()
            .map(|seg| {
                Ok(EnvelopeSegment {
                    lo: seg.lo,
                    hi: seg.hi,
                    s: seg.s,
                    b: seg.b,
                    payload: f(seg.payload)?,
                })
            })
            .collect::<Result<Vec<_>, E>>()?;
        Ok(LambdaEnvelope { segments })
    }
}

impl<T: Serialize> Serialize for LambdaEnvelope<T> {
    fn to_value(&self) -> Value {
        self.segments.to_value()
    }
}

// The "never empty" invariant is checked on the way in; λ-ordering and
// coverage of [0, 1] are taken on trust from the encoder (the query methods
// degrade gracefully — `segment_at` falls back to the last segment).
impl<T: Deserialize> Deserialize for LambdaEnvelope<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let segments = Vec::<EnvelopeSegment<T>>::from_value(v)?;
        if segments.is_empty() {
            return Err(DeError::custom("LambdaEnvelope must have ≥ 1 segment"));
        }
        Ok(LambdaEnvelope { segments })
    }
}

/// Builds the lower envelope of `(S, B, payload)` candidates over λ ∈ [0, 1].
///
/// Returns `None` for an empty candidate set. Deterministic: among
/// candidates with identical `(S, B)` the earliest in input order wins, and
/// dominated or hull-interior candidates are dropped exactly (collinear
/// middles never strictly improve, so dropping them cannot change any
/// envelope value).
pub fn lower_envelope<T>(candidates: Vec<(Cost, Cost, T)>) -> Option<LambdaEnvelope<T>> {
    if candidates.is_empty() {
        return None;
    }
    let sb: Vec<(u64, u64)> = candidates
        .iter()
        .map(|(s, b, _)| (s.ticks(), b.ticks()))
        .collect();
    let mut payloads: Vec<Option<T>> = candidates.into_iter().map(|(_, _, t)| Some(t)).collect();

    // Stable sort by (B asc, S asc): ties keep input (e.g. threshold) order.
    let mut idx: Vec<usize> = (0..sb.len()).collect();
    idx.sort_by(|&i, &j| sb[i].1.cmp(&sb[j].1).then(sb[i].0.cmp(&sb[j].0)));

    // Pareto: walking B upward, keep only strict S improvements.
    let mut pareto: Vec<usize> = Vec::new();
    for &i in &idx {
        match pareto.last() {
            Some(&last) if sb[i].0 >= sb[last].0 => {}
            _ => pareto.push(i),
        }
    }
    // Now S ascending (B descending) for the monotone chain.
    pareto.reverse();

    // Lower-left convex chain: drop any middle point on or above the chord
    // of its neighbours (its line never strictly beats both).
    let mut hull: Vec<usize> = Vec::new();
    for &i in &pareto {
        while hull.len() >= 2 {
            let p1 = sb[hull[hull.len() - 2]];
            let p2 = sb[hull[hull.len() - 1]];
            let p3 = sb[i];
            // p2 strictly below chord p1→p3 ⇔ cross < 0.
            let cross = (p3.0 as i128 - p1.0 as i128) * (p2.1 as i128 - p1.1 as i128)
                - (p2.0 as i128 - p1.0 as i128) * (p3.1 as i128 - p1.1 as i128);
            if cross < 0 {
                break;
            }
            hull.pop();
        }
        hull.push(i);
    }

    // Segments from λ=0 (min-B vertex = hull.last) to λ=1 (min-S = hull[0]).
    let mut segments = Vec::with_capacity(hull.len());
    let mut lo = LambdaQ::ZERO;
    for w in (0..hull.len()).rev() {
        let (s_w, b_w) = sb[hull[w]];
        let hi = if w == 0 {
            LambdaQ::ONE
        } else {
            let (s_next, b_next) = sb[hull[w - 1]];
            debug_assert!(s_next < s_w && b_next > b_w);
            let db = (b_next - b_w) as u128;
            let ds = (s_w - s_next) as u128;
            LambdaQ::reduced(db, db + ds)
        };
        segments.push(EnvelopeSegment {
            lo,
            hi,
            s: Cost::new(s_w),
            b: Cost::new(b_w),
            payload: payloads[hull[w]].take().expect("hull indexes are unique"),
        });
        lo = hi;
    }
    Some(LambdaEnvelope { segments })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: u64) -> Cost {
        Cost::new(v)
    }

    fn env(points: &[(u64, u64)]) -> LambdaEnvelope<usize> {
        lower_envelope(
            points
                .iter()
                .enumerate()
                .map(|(i, &(s, b))| (c(s), c(b), i))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn lambda_q_arithmetic() {
        let half = LambdaQ::new(2, 4);
        assert_eq!(half.num(), 1);
        assert_eq!(half.den(), 2);
        assert_eq!(half, LambdaQ::new(1, 2));
        assert!(LambdaQ::new(1, 3) < half);
        assert_eq!(half.as_lambda(), Some(Lambda::HALF));
        let mid = LambdaQ::midpoint(LambdaQ::ZERO, half);
        assert_eq!(mid, LambdaQ::new(1, 4));
        assert_eq!(half.cmp_lambda(Lambda::HALF), Ordering::Equal);
        assert_eq!(LambdaQ::ZERO.cmp_lambda(Lambda::HALF), Ordering::Less);
        assert_eq!(LambdaQ::ONE.cmp_lambda(Lambda::HALF), Ordering::Greater);
        assert_eq!(LambdaQ::new(5, 5), LambdaQ::ONE);
        assert!((LambdaQ::new(3, 4).as_f64() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn single_candidate_covers_the_whole_interval() {
        let e = env(&[(7, 3)]);
        assert_eq!(e.len(), 1);
        let seg = &e.segments()[0];
        assert_eq!((seg.lo, seg.hi), (LambdaQ::ZERO, LambdaQ::ONE));
        assert_eq!(e.objective_at(Lambda::HALF), 10);
        assert_eq!(e.objective_at(Lambda::ZERO), 3);
        assert_eq!(e.objective_at(Lambda::ONE), 7);
        assert!(e.breakpoints().is_empty());
    }

    #[test]
    fn two_candidates_cross_at_the_exact_rational() {
        // (S=1, B=10) vs (S=10, B=1): symmetric, breakpoint at λ = 1/2.
        let e = env(&[(1, 10), (10, 1)]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.breakpoints(), vec![LambdaQ::new(1, 2)]);
        // λ=0 → min B wins (payload 1); λ=1 → min S wins (payload 0).
        assert_eq!(e.segment_at(Lambda::ZERO).payload, 1);
        assert_eq!(e.segment_at(Lambda::ONE).payload, 0);
        // λ=1/4 scaled by 4: 1·S + 3·B; candidate 1: 10 + 3 = 13 < 31.
        assert_eq!(e.objective_at(Lambda::new(1, 4).unwrap()), 13);
    }

    #[test]
    fn dominated_and_hull_interior_candidates_are_dropped() {
        // (6,6) is above the chord of (1,10)-(10,1); (12,12) is dominated.
        let e = env(&[(1, 10), (6, 6), (10, 1), (12, 12)]);
        assert_eq!(e.len(), 2);
        // (5,5) is strictly below the chord → a real middle segment.
        let e2 = env(&[(1, 10), (5, 5), (10, 1)]);
        assert_eq!(e2.len(), 3);
        assert_eq!(e2.segment_at(Lambda::HALF).payload, 1);
    }

    #[test]
    fn envelope_matches_brute_force_minimum_everywhere() {
        let pts = [(3u64, 40u64), (5, 22), (9, 14), (14, 9), (30, 2), (18, 18)];
        let e = env(&pts);
        for num in 0..=20u32 {
            let lambda = Lambda::new(num, 20).unwrap();
            let brute = pts
                .iter()
                .map(|&(s, b)| lambda.ssb_scaled(c(s), c(b)))
                .min()
                .unwrap();
            assert_eq!(e.objective_at(lambda), brute, "λ={num}/20");
        }
    }

    #[test]
    fn duplicate_candidates_keep_the_first() {
        let e = env(&[(4, 4), (4, 4), (4, 4)]);
        assert_eq!(e.len(), 1);
        assert_eq!(e.segments()[0].payload, 0);
    }

    #[test]
    fn segment_midpoints_lie_inside_their_segment() {
        let e = env(&[(1, 10), (5, 5), (10, 1)]);
        for seg in e.segments() {
            let mid = seg.midpoint();
            assert!(seg.lo <= mid && mid <= seg.hi);
            let lam = mid.as_lambda().unwrap();
            assert_eq!(e.segment_at(lam).payload, seg.payload);
        }
    }
}
