//! # hsa-graph — doubly weighted graphs and the SSB/SB path algorithms
//!
//! This crate is the graph substrate of the reproduction of *"Optimal
//! Assignment of a Tree-Structured Context Reasoning Procedure onto a
//! Host-Satellites System"* (Mei, Pawar & Widya, IPPS 2007).
//!
//! It provides, from the ground up:
//!
//! * exact integer [`Cost`] arithmetic and the rational weighting
//!   coefficient [`Lambda`] (§4.1's λ);
//! * the doubly weighted multigraph [`Dwg`] with O(1) edge elimination —
//!   every edge carries a *sum* weight σ and a *bottleneck* weight β;
//! * σ-shortest [`dijkstra`] search, [`Path`] measures
//!   (`S`, `B`, `SSB`, `SB`), and reachability;
//! * the paper's **SSB algorithm** ([`ssb_search`], §4.2/Figure 3):
//!   minimise `λ·S(P) + (1−λ)·B(P)`;
//! * **Bokhari's SB algorithm** ([`sb_search`], the 1988 baseline):
//!   minimise `max(S(P), B(P))`;
//! * an exhaustive [`enumerate`] oracle and seeded random [`generate`]-ors
//!   used by the test-suite and benchmarks;
//! * the worked example of the paper's Figure 4 ([`figures::fig4_graph`]),
//!   reproduced trace-for-trace in this crate's tests.
//!
//! The *coloured* variants of these searches — where the B weight becomes a
//! maximum of per-colour β sums — live in the `hsa-assign` crate, which owns
//! the colour semantics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cost;
mod dwg;
mod error;
mod path;
mod scratch;

pub mod connectivity;
pub mod dijkstra;
pub mod enumerate;
pub mod envelope;
pub mod figures;
pub mod generate;
pub mod sb;
pub mod ssb;
pub mod sweep;

pub use cost::{Cost, Lambda, ScaledSsb, SSB_INFINITY};
pub use dwg::{AliveSnapshot, Dwg, Edge, EdgeId, NodeId};
pub use envelope::{lower_envelope, EnvelopeSegment, LambdaEnvelope, LambdaQ};
pub use error::GraphError;
pub use path::Path;
pub use sb::{sb_search, sb_search_in, SbOutcome};
pub use scratch::SolveScratch;
pub use ssb::{
    ssb_search, ssb_search_in, EliminationRule, SsbBest, SsbConfig, SsbIteration, SsbOutcome,
    Termination,
};
pub use sweep::{sb_search_sweep, ssb_frontier, ssb_frontier_in, ssb_search_sweep, SweepOutcome};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::{
        sb_search, ssb_frontier, ssb_search, Cost, Dwg, EdgeId, EliminationRule, GraphError,
        Lambda, LambdaQ, NodeId, Path, SolveScratch, SsbConfig, SsbOutcome, Termination,
    };
}
