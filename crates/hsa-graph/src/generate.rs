//! Seeded random DWG generators for benchmarks and property tests.
//!
//! All generators take explicit `u64` seeds and are deterministic across
//! runs and platforms (we use [`rand::rngs::StdRng`], which is seedable and
//! stable for a given crate version), so every benchmark row in
//! EXPERIMENTS.md can be regenerated bit-for-bit.

use crate::{Cost, Dwg, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the layered random DAG generator.
#[derive(Clone, Copy, Debug)]
pub struct LayeredParams {
    /// Number of intermediate layers between S and T (≥ 0).
    pub layers: usize,
    /// Nodes per intermediate layer (≥ 1).
    pub width: usize,
    /// Edges added between consecutive layers beyond the guaranteed
    /// connectivity spine, per layer pair.
    pub extra_edges: usize,
    /// σ weights are drawn uniformly from `1..=max_sigma`.
    pub max_sigma: u64,
    /// β weights are drawn uniformly from `1..=max_beta`.
    pub max_beta: u64,
}

impl Default for LayeredParams {
    fn default() -> Self {
        LayeredParams {
            layers: 3,
            width: 3,
            extra_edges: 4,
            max_sigma: 100,
            max_beta: 100,
        }
    }
}

/// A generated graph together with its two distinguished nodes.
#[derive(Clone, Debug)]
pub struct GeneratedDwg {
    /// The graph.
    pub graph: Dwg,
    /// The source node "S".
    pub source: NodeId,
    /// The target node "T".
    pub target: NodeId,
}

/// Generates a layered DAG `S → layer₁ → … → layerₙ → T`.
///
/// Every node in a layer is connected forward to at least one node of the
/// next layer and reachable from the previous one, so an S→T path always
/// exists; `extra_edges` random forward edges per layer pair (plus parallel
/// duplicates, which the DWG model allows) control density.
pub fn layered_dag(params: &LayeredParams, seed: u64) -> GeneratedDwg {
    let mut rng = StdRng::seed_from_u64(seed);
    let width = params.width.max(1);
    let mut g = Dwg::new();
    let source = g.add_node();

    let mut prev: Vec<NodeId> = vec![source];
    for _ in 0..params.layers {
        let layer: Vec<NodeId> = (0..width).map(|_| g.add_node()).collect();
        connect_layers(&mut g, &mut rng, &prev, &layer, params);
        prev = layer;
    }
    let target = g.add_node();
    connect_layers(&mut g, &mut rng, &prev, &[target], params);

    GeneratedDwg {
        graph: g,
        source,
        target,
    }
}

fn connect_layers(
    g: &mut Dwg,
    rng: &mut StdRng,
    from: &[NodeId],
    to: &[NodeId],
    params: &LayeredParams,
) {
    let weight = |rng: &mut StdRng| {
        (
            Cost::new(rng.random_range(1..=params.max_sigma.max(1))),
            Cost::new(rng.random_range(1..=params.max_beta.max(1))),
        )
    };
    // Spine: every `from` node reaches some `to` node; every `to` node is
    // reached by some `from` node.
    for &u in from {
        let v = to[rng.random_range(0..to.len())];
        let (s, b) = weight(rng);
        g.add_edge(u, v, s, b);
    }
    for &v in to {
        let u = from[rng.random_range(0..from.len())];
        let (s, b) = weight(rng);
        g.add_edge(u, v, s, b);
    }
    for _ in 0..params.extra_edges {
        let u = from[rng.random_range(0..from.len())];
        let v = to[rng.random_range(0..to.len())];
        let (s, b) = weight(rng);
        g.add_edge(u, v, s, b);
    }
}

/// Generates the two-hop "Figure 4 shaped" family: `S → M → T` with the
/// given numbers of parallel edges on each hop — the smallest graphs on
/// which SSB elimination dynamics are interesting.
pub fn two_hop(left_edges: usize, right_edges: usize, max_w: u64, seed: u64) -> GeneratedDwg {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Dwg::with_nodes(3);
    let (s, m, t) = (NodeId(0), NodeId(1), NodeId(2));
    for _ in 0..left_edges.max(1) {
        g.add_edge(
            s,
            m,
            Cost::new(rng.random_range(1..=max_w.max(1))),
            Cost::new(rng.random_range(1..=max_w.max(1))),
        );
    }
    for _ in 0..right_edges.max(1) {
        g.add_edge(
            m,
            t,
            Cost::new(rng.random_range(1..=max_w.max(1))),
            Cost::new(rng.random_range(1..=max_w.max(1))),
        );
    }
    GeneratedDwg {
        graph: g,
        source: s,
        target: t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;

    #[test]
    fn layered_dag_is_connected() {
        for seed in 0..20 {
            let gen = layered_dag(&LayeredParams::default(), seed);
            assert!(is_connected(&gen.graph, gen.source, gen.target));
        }
    }

    #[test]
    fn layered_dag_is_deterministic() {
        let a = layered_dag(&LayeredParams::default(), 42);
        let b = layered_dag(&LayeredParams::default(), 42);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        for (ea, eb) in a.graph.all_edges().zip(b.graph.all_edges()) {
            assert_eq!(ea.1, eb.1);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = layered_dag(&LayeredParams::default(), 1);
        let b = layered_dag(&LayeredParams::default(), 2);
        let same = a
            .graph
            .all_edges()
            .zip(b.graph.all_edges())
            .all(|(x, y)| x.1 == y.1);
        assert!(!same);
    }

    #[test]
    fn sizes_scale_with_params() {
        let p = LayeredParams {
            layers: 5,
            width: 4,
            extra_edges: 2,
            ..LayeredParams::default()
        };
        let gen = layered_dag(&p, 0);
        assert_eq!(gen.graph.num_nodes(), 2 + 5 * 4);
        // 6 layer gaps × (width-dependent spine + 2 extra) edges
        assert!(gen.graph.num_edges() >= 6 * 2);
    }

    #[test]
    fn two_hop_shape() {
        let gen = two_hop(4, 3, 50, 9);
        assert_eq!(gen.graph.num_nodes(), 3);
        assert_eq!(gen.graph.num_edges(), 7);
        assert!(is_connected(&gen.graph, gen.source, gen.target));
    }

    #[test]
    fn zero_layers_still_connects_source_to_target() {
        let p = LayeredParams {
            layers: 0,
            ..LayeredParams::default()
        };
        let gen = layered_dag(&p, 3);
        assert!(is_connected(&gen.graph, gen.source, gen.target));
        assert_eq!(gen.graph.num_nodes(), 2);
    }
}
