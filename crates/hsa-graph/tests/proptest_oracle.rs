//! Property tests: the iterative SSB and SB searches must agree with the
//! exhaustive path-enumeration oracle on arbitrary random layered DAGs.

use hsa_graph::enumerate::{optimal_sb_by_enumeration, optimal_ssb_by_enumeration};
use hsa_graph::generate::{layered_dag, two_hop, LayeredParams};
use hsa_graph::{sb_search, ssb_search, EliminationRule, Lambda, SsbConfig};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = LayeredParams> {
    (0usize..4, 1usize..4, 0usize..6, 1u64..60, 1u64..60).prop_map(
        |(layers, width, extra, ms, mb)| LayeredParams {
            layers,
            width,
            extra_edges: extra,
            max_sigma: ms,
            max_beta: mb,
        },
    )
}

fn arb_lambda() -> impl Strategy<Value = Lambda> {
    (0u32..=4, 1u32..=4).prop_map(|(a, b)| {
        let den = b.max(1);
        let num = a.min(den);
        Lambda::new(num, den).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn ssb_matches_oracle_on_layered_dags(params in arb_params(), seed in 0u64..10_000, lambda in arb_lambda()) {
        let gen = layered_dag(&params, seed);
        let oracle = optimal_ssb_by_enumeration(&gen.graph, gen.source, gen.target, lambda, 200_000)
            .expect("enumeration limit must not trip on these sizes");
        let mut g = gen.graph.clone();
        let cfg = SsbConfig { lambda, ..SsbConfig::default() };
        let out = ssb_search(&mut g, gen.source, gen.target, &cfg);
        match (oracle, out.best) {
            (Some((_, ow)), Some(best)) => {
                prop_assert_eq!(ow, best.ssb, "algorithm and oracle disagree");
                // The returned path must really have the claimed weights.
                best.path.validate(&gen.graph, gen.source, gen.target).unwrap();
                prop_assert_eq!(best.path.s_weight(&gen.graph), best.s);
                prop_assert_eq!(best.path.b_weight(&gen.graph), best.b);
                prop_assert_eq!(lambda.ssb_scaled(best.s, best.b), best.ssb);
            }
            (None, None) => {}
            (o, b) => prop_assert!(false, "oracle {:?} vs algorithm {:?}", o.map(|x| x.1), b.map(|x| x.ssb)),
        }
    }

    #[test]
    fn strict_rule_matches_greater_equal(params in arb_params(), seed in 0u64..10_000) {
        let gen = layered_dag(&params, seed);
        let mut g1 = gen.graph.clone();
        let mut g2 = gen.graph.clone();
        let a = ssb_search(&mut g1, gen.source, gen.target, &SsbConfig::default());
        let strict = SsbConfig { rule: EliminationRule::Strict, ..SsbConfig::default() };
        let b = ssb_search(&mut g2, gen.source, gen.target, &strict);
        prop_assert_eq!(a.best.map(|x| x.ssb), b.best.map(|x| x.ssb));
    }

    #[test]
    fn sb_matches_oracle_on_layered_dags(params in arb_params(), seed in 0u64..10_000) {
        let gen = layered_dag(&params, seed);
        let oracle = optimal_sb_by_enumeration(&gen.graph, gen.source, gen.target, 200_000).unwrap();
        let mut g = gen.graph.clone();
        let out = sb_search(&mut g, gen.source, gen.target);
        prop_assert_eq!(oracle.map(|x| x.1), out.best.map(|x| x.1));
    }

    #[test]
    fn ssb_matches_oracle_on_two_hop_multigraphs(l in 1usize..8, r in 1usize..8, w in 1u64..40, seed in 0u64..10_000) {
        let gen = two_hop(l, r, w, seed);
        let oracle = optimal_ssb_by_enumeration(&gen.graph, gen.source, gen.target, Lambda::HALF, 200_000)
            .unwrap().unwrap();
        let mut g = gen.graph.clone();
        let out = ssb_search(&mut g, gen.source, gen.target, &SsbConfig::default());
        prop_assert_eq!(out.best.unwrap().ssb, oracle.1);
    }

    #[test]
    fn ssb_iterations_bounded_by_edges(params in arb_params(), seed in 0u64..10_000) {
        let gen = layered_dag(&params, seed);
        let edges = gen.graph.num_edges();
        let mut g = gen.graph.clone();
        let out = ssb_search(&mut g, gen.source, gen.target, &SsbConfig::default());
        // Each non-final iteration removes ≥1 edge, so iterations ≤ |E| + 1.
        prop_assert!(out.iterations <= edges + 1);
    }

    #[test]
    fn lambda_extremes_bracket_intermediate(params in arb_params(), seed in 0u64..10_000) {
        // With λ=1 the optimum is the pure min-S path; with λ=0 the pure
        // min-bottleneck path. Any λ optimum is bounded by those components.
        let gen = layered_dag(&params, seed);
        let mut g1 = gen.graph.clone();
        let min_s = ssb_search(&mut g1, gen.source, gen.target,
            &SsbConfig { lambda: Lambda::ONE, ..SsbConfig::default() });
        let mut g2 = gen.graph.clone();
        let half = ssb_search(&mut g2, gen.source, gen.target, &SsbConfig::default());
        if let (Some(s_best), Some(h_best)) = (min_s.best, half.best) {
            // S+B of any path ≥ min-S; the λ=½ optimum's S is ≥ the global min S.
            prop_assert!(h_best.s >= s_best.s);
        }
    }
}
