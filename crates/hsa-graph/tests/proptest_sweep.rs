//! Property tests for the threshold-sweep variants: three mutually
//! independent implementations (iterate-eliminate, parametric sweep,
//! exhaustive enumeration) must agree on every random graph — plus
//! robustness under extreme (saturating) weights.

use hsa_graph::enumerate::optimal_ssb_by_enumeration;
use hsa_graph::generate::{layered_dag, LayeredParams};
use hsa_graph::{
    sb_search, sb_search_sweep, ssb_search, ssb_search_sweep, Cost, Dwg, Lambda, NodeId, ScaledSsb,
    SsbConfig,
};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = LayeredParams> {
    (0usize..4, 1usize..4, 0usize..6, 1u64..60, 1u64..60).prop_map(
        |(layers, width, extra, ms, mb)| LayeredParams {
            layers,
            width,
            extra_edges: extra,
            max_sigma: ms,
            max_beta: mb,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn three_ssb_implementations_agree(params in arb_params(), seed in 0u64..10_000) {
        let gen = layered_dag(&params, seed);
        let lambda = Lambda::HALF;
        let oracle = optimal_ssb_by_enumeration(&gen.graph, gen.source, gen.target, lambda, 200_000)
            .unwrap();
        let mut g1 = gen.graph.clone();
        let iterative = ssb_search(&mut g1, gen.source, gen.target, &SsbConfig::default());
        let mut g2 = gen.graph.clone();
        let sweep = ssb_search_sweep(&mut g2, gen.source, gen.target, lambda);
        let o = oracle.map(|x| x.1);
        prop_assert_eq!(iterative.best.map(|b| b.ssb), o);
        prop_assert_eq!(sweep.best.map(|b| b.3), o);
        // Sweep restores liveness.
        prop_assert_eq!(g2.num_alive(), gen.graph.num_alive());
    }

    #[test]
    fn sb_sweep_agrees_with_iterative(params in arb_params(), seed in 0u64..10_000) {
        let gen = layered_dag(&params, seed);
        let mut g1 = gen.graph.clone();
        let a = sb_search(&mut g1, gen.source, gen.target);
        let mut g2 = gen.graph.clone();
        let b = sb_search_sweep(&mut g2, gen.source, gen.target);
        prop_assert_eq!(
            a.best.map(|x| x.1.ticks() as ScaledSsb),
            b.best.map(|x| x.3)
        );
    }

    #[test]
    fn sweep_probe_count_is_bounded(params in arb_params(), seed in 0u64..10_000) {
        let gen = layered_dag(&params, seed);
        let mut g = gen.graph.clone();
        let out = ssb_search_sweep(&mut g, gen.source, gen.target, Lambda::HALF);
        prop_assert!(out.probes <= gen.graph.num_edges());
    }
}

/// Extreme weights: Cost::MAX (our +∞) must not overflow or panic in any
/// search; paths through MAX-weight edges are simply never optimal when an
/// alternative exists.
#[test]
fn saturating_extremes_are_safe() {
    let mut g = Dwg::with_nodes(3);
    g.add_edge(NodeId(0), NodeId(1), Cost::MAX, Cost::new(1));
    g.add_edge(NodeId(1), NodeId(2), Cost::new(1), Cost::MAX);
    let cheap = g.add_edge(NodeId(0), NodeId(2), Cost::new(5), Cost::new(5));

    let mut g1 = g.clone();
    let it = ssb_search(&mut g1, NodeId(0), NodeId(2), &SsbConfig::default());
    assert_eq!(it.best.as_ref().unwrap().path.edges, vec![cheap]);

    let mut g2 = g.clone();
    let sw = ssb_search_sweep(&mut g2, NodeId(0), NodeId(2), Lambda::HALF);
    assert_eq!(sw.best.as_ref().unwrap().0.edges, vec![cheap]);

    let mut g3 = g.clone();
    let sb = sb_search(&mut g3, NodeId(0), NodeId(2));
    assert_eq!(sb.best.as_ref().unwrap().0.edges, vec![cheap]);
}

/// A σ = Cost::MAX edge acts as +∞ — Dijkstra never relaxes through it,
/// so it is semantically *absent* (no overflow, no infinite loop). A
/// finite-σ edge with β = MAX stays usable, with a saturated B weight.
#[test]
fn all_infinite_graph_terminates() {
    let mut g = Dwg::with_nodes(2);
    g.add_edge(NodeId(0), NodeId(1), Cost::MAX, Cost::MAX);
    let mut g1 = g.clone();
    let it = ssb_search(&mut g1, NodeId(0), NodeId(1), &SsbConfig::default());
    assert!(it.best.is_none(), "σ=∞ edges are unreachable by design");

    let mut g2 = Dwg::with_nodes(2);
    g2.add_edge(NodeId(0), NodeId(1), Cost::new(1), Cost::MAX);
    let it = ssb_search(&mut g2, NodeId(0), NodeId(1), &SsbConfig::default());
    let best = it.best.unwrap();
    assert_eq!(best.s, Cost::new(1));
    assert_eq!(best.b, Cost::MAX);
}

/// Zero-weight graphs: everything collapses to zero objectives without
/// division-by-zero style issues.
#[test]
fn all_zero_graph() {
    let mut g = Dwg::with_nodes(3);
    g.add_edge(NodeId(0), NodeId(1), Cost::ZERO, Cost::ZERO);
    g.add_edge(NodeId(1), NodeId(2), Cost::ZERO, Cost::ZERO);
    let mut g1 = g.clone();
    let it = ssb_search(&mut g1, NodeId(0), NodeId(2), &SsbConfig::default());
    assert_eq!(it.best.unwrap().ssb, 0);
    let mut g2 = g.clone();
    let sw = ssb_search_sweep(&mut g2, NodeId(0), NodeId(2), Lambda::HALF);
    assert_eq!(sw.best.unwrap().3, 0);
}
