//! Ties the future-work DAG world back to the paper's tree world:
//!
//! * every tree *cut*, translated into a DAG assignment, has
//!   `barrier_makespan` exactly equal to the tree objective `S + B`;
//! * the general `list_makespan` never exceeds the barrier model (it only
//!   adds overlap);
//! * the DAG optimum over *arbitrary* assignments is never worse than the
//!   tree optimum over cuts (cuts are a subset of assignments).

use hsa_assign::{evaluate_cut, Expanded, Prepared, Solver};
use hsa_graph::Lambda;
use hsa_heuristics::{
    barrier_makespan, branch_and_bound, genetic, list_makespan, BnbConfig, GaConfig, TaskDag,
};
use hsa_tree::for_each_cut;
use hsa_workloads::{random_instance, Placement, RandomTreeParams};

fn small_params(seed_bump: u32) -> RandomTreeParams {
    RandomTreeParams {
        n_crus: 7,
        max_children: 3,
        n_satellites: 2,
        placement: match seed_bump % 3 {
            0 => Placement::Blocked,
            1 => Placement::Interleaved,
            _ => Placement::Random,
        },
        ..RandomTreeParams::default()
    }
}

#[test]
fn barrier_makespan_equals_tree_objective_on_every_cut() {
    for seed in 0..15u64 {
        let (tree, costs) = random_instance(&small_params(seed as u32), seed);
        let prep = Prepared::new(&tree, &costs).unwrap();
        let dag = TaskDag::from_tree(&tree, &costs);
        for_each_cut(&tree, &|e| prep.colouring.cuttable(e), &mut |cut| {
            let (_a, rep) = evaluate_cut(&prep, cut).unwrap();
            let asg = dag.assignment_from_cut(&tree, &prep.colouring, cut);
            let barrier = barrier_makespan(&dag, &asg).unwrap();
            assert_eq!(
                barrier,
                rep.end_to_end,
                "seed {seed}, cut {:?}",
                cut.edges()
            );
            // List scheduling only overlaps more.
            let list = list_makespan(&dag, &asg).unwrap();
            assert!(list <= barrier, "seed {seed}");
        });
    }
}

#[test]
fn dag_optimum_never_worse_than_tree_optimum() {
    for seed in 0..6u64 {
        let (tree, costs) = random_instance(&small_params(seed as u32), seed);
        let prep = Prepared::new(&tree, &costs).unwrap();
        let tree_opt = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let dag = TaskDag::from_tree(&tree, &costs);
        let bnb = branch_and_bound(&dag, &BnbConfig::default()).unwrap();
        assert!(
            bnb.makespan <= tree_opt.delay(),
            "seed {seed}: DAG opt {} > tree opt {}",
            bnb.makespan,
            tree_opt.delay()
        );
    }
}

#[test]
fn ga_close_to_bnb_on_tree_instances() {
    for seed in 0..4u64 {
        let (tree, costs) = random_instance(&small_params(seed as u32), seed);
        let dag = TaskDag::from_tree(&tree, &costs);
        let exact = branch_and_bound(&dag, &BnbConfig::default()).unwrap();
        let ga = genetic(
            &dag,
            &GaConfig {
                seed,
                ..GaConfig::default()
            },
        )
        .unwrap();
        assert!(ga.makespan >= exact.makespan);
        // Within 30% on these tiny instances.
        assert!(
            ga.makespan.ticks() <= exact.makespan.ticks() * 13 / 10,
            "seed {seed}: GA {} vs exact {}",
            ga.makespan,
            exact.makespan
        );
    }
}
