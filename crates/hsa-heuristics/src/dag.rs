//! The general task-DAG model — the paper's §6 future work: assignments of
//! arbitrary precedence DAGs onto the star platform, where the subtree
//! structure of the tree problem no longer constrains placements.

use hsa_graph::Cost;
use hsa_tree::{CruTree, Cut, SatelliteId};
use serde::{Deserialize, Serialize};

/// Identifier of a task.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Index accessor.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where a task runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub enum Location {
    /// On the host.
    Host,
    /// On the given satellite.
    Satellite(SatelliteId),
}

/// One task.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Task {
    /// Display name.
    pub name: String,
    /// Processing time on the host.
    pub host_time: Cost,
    /// Processing time on a satellite.
    pub satellite_time: Cost,
    /// Some tasks are physically tied to a satellite (sensor acquisition).
    pub pinned: Option<SatelliteId>,
}

/// A precedence edge: `from` must finish (and its data arrive) before `to`
/// starts.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Precedence {
    /// Producer.
    pub from: TaskId,
    /// Consumer.
    pub to: TaskId,
    /// Transfer time when the two run on different locations.
    pub comm: Cost,
}

/// A task DAG on the star platform.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskDag {
    /// The tasks.
    pub tasks: Vec<Task>,
    /// Precedence edges.
    pub edges: Vec<Precedence>,
    /// Number of satellites.
    pub n_satellites: u32,
}

/// An assignment: one location per task.
pub type DagAssignment = Vec<Location>;

impl TaskDag {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Checks shape: edge endpoints exist, pinnings exist, graph is acyclic.
    pub fn validate(&self) -> Result<(), String> {
        for e in &self.edges {
            if e.from.index() >= self.len() || e.to.index() >= self.len() {
                return Err(format!("edge {:?} out of range", e));
            }
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if let Some(s) = t.pinned {
                if s.0 >= self.n_satellites {
                    return Err(format!("task {i} pinned to missing {s}"));
                }
            }
        }
        self.topo_order().map(|_| ())
    }

    /// A topological order, or an error if cyclic.
    pub fn topo_order(&self) -> Result<Vec<TaskId>, String> {
        let n = self.len();
        let mut indeg = vec![0u32; n];
        for e in &self.edges {
            indeg[e.to.index()] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        ready.reverse(); // pop from the back → ascending id order
        let mut out = Vec::with_capacity(n);
        let mut adj: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for e in &self.edges {
            adj[e.from.index()].push(e.to);
        }
        while let Some(i) = ready.pop() {
            out.push(TaskId(i as u32));
            for &t in &adj[i] {
                indeg[t.index()] -= 1;
                if indeg[t.index()] == 0 {
                    ready.push(t.index());
                }
            }
        }
        if out.len() != n {
            return Err("cycle detected".into());
        }
        Ok(out)
    }

    /// Whether an assignment respects every pinning.
    pub fn respects_pinning(&self, asg: &DagAssignment) -> bool {
        asg.len() == self.len()
            && self.tasks.iter().zip(asg).all(|(t, &loc)| match t.pinned {
                Some(s) => loc == Location::Satellite(s),
                None => true,
            })
    }

    /// Converts a costed CRU tree into the equivalent task DAG: one task
    /// per CRU plus one pinned *acquisition* task per leaf (the sensor),
    /// edges child→parent with `c_up`, sensor→leaf with `c_raw`.
    pub fn from_tree(tree: &CruTree, costs: &hsa_tree::CostModel) -> TaskDag {
        let n = tree.len();
        // Task i is CRU i; sensor tasks are appended after.
        let mut tasks: Vec<Task> = (0..n)
            .map(|i| {
                let c = hsa_tree::CruId(i as u32);
                Task {
                    name: tree.node_unchecked(c).name.clone(),
                    host_time: costs.h(c),
                    satellite_time: costs.s(c),
                    pinned: None,
                }
            })
            .collect();
        let mut edges = Vec::new();
        for i in 0..n {
            let c = hsa_tree::CruId(i as u32);
            if let Some(p) = tree.parent(c) {
                edges.push(Precedence {
                    from: TaskId(i as u32),
                    to: TaskId(p.0),
                    comm: costs.c_up(c),
                });
            }
        }
        // Sensor acquisition tasks (zero work, pinned).
        for l in tree.leaves_in_order() {
            let sat = costs.pinned_satellite(l).expect("validated cost model");
            let id = TaskId(tasks.len() as u32);
            tasks.push(Task {
                name: format!("sensor-{}", tree.node_unchecked(l).name),
                host_time: Cost::ZERO,
                satellite_time: Cost::ZERO,
                pinned: Some(sat),
            });
            edges.push(Precedence {
                from: id,
                to: TaskId(l.0),
                comm: costs.c_raw(l),
            });
        }
        TaskDag {
            tasks,
            edges,
            n_satellites: costs.n_satellites(),
        }
    }

    /// Translates a tree *cut* into the DAG assignment it induces: CRUs
    /// below the cut go to their subtree's satellite, the rest to the host;
    /// sensor tasks stay pinned.
    pub fn assignment_from_cut(
        &self,
        tree: &CruTree,
        colouring: &hsa_tree::Colouring,
        cut: &Cut,
    ) -> DagAssignment {
        let below = cut.below_mask(tree);
        let mut asg: DagAssignment = Vec::with_capacity(self.len());
        for i in 0..tree.len() {
            let c = hsa_tree::CruId(i as u32);
            if below[c.index()] {
                let sat = colouring.node_colour[c.index()]
                    .satellite()
                    .expect("below-cut nodes are uniformly coloured");
                asg.push(Location::Satellite(sat));
            } else {
                asg.push(Location::Host);
            }
        }
        // Sensor tasks (appended after the CRUs by `from_tree`) stay pinned.
        for t in &self.tasks[tree.len()..] {
            asg.push(Location::Satellite(
                t.pinned.expect("sensor tasks are pinned"),
            ));
        }
        asg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_tree::figures::fig2_tree;

    #[test]
    fn from_tree_shape() {
        let (t, m) = fig2_tree();
        let dag = TaskDag::from_tree(&t, &m);
        dag.validate().unwrap();
        // 13 CRUs + 7 sensor tasks; 12 tree edges + 7 sensor edges.
        assert_eq!(dag.len(), 20);
        assert_eq!(dag.edges.len(), 19);
        assert_eq!(dag.n_satellites, 4);
        assert_eq!(dag.tasks.iter().filter(|t| t.pinned.is_some()).count(), 7);
    }

    #[test]
    fn topo_order_is_valid() {
        let (t, m) = fig2_tree();
        let dag = TaskDag::from_tree(&t, &m);
        let order = dag.topo_order().unwrap();
        let mut pos = vec![0usize; dag.len()];
        for (i, t) in order.iter().enumerate() {
            pos[t.index()] = i;
        }
        for e in &dag.edges {
            assert!(pos[e.from.index()] < pos[e.to.index()]);
        }
    }

    #[test]
    fn cycles_are_rejected() {
        let dag = TaskDag {
            tasks: (0..2)
                .map(|i| Task {
                    name: format!("t{i}"),
                    host_time: Cost::new(1),
                    satellite_time: Cost::new(1),
                    pinned: None,
                })
                .collect(),
            edges: vec![
                Precedence {
                    from: TaskId(0),
                    to: TaskId(1),
                    comm: Cost::ZERO,
                },
                Precedence {
                    from: TaskId(1),
                    to: TaskId(0),
                    comm: Cost::ZERO,
                },
            ],
            n_satellites: 1,
        };
        assert!(dag.validate().is_err());
    }

    #[test]
    fn pinning_is_enforced() {
        let (t, m) = fig2_tree();
        let dag = TaskDag::from_tree(&t, &m);
        let col = hsa_tree::Colouring::compute(&t, &m).unwrap();
        let cut = Cut::max_offload(&t, &col);
        let asg = dag.assignment_from_cut(&t, &col, &cut);
        assert!(dag.respects_pinning(&asg));
        let mut bad = asg.clone();
        bad[13] = Location::Host; // first sensor task
        assert!(!dag.respects_pinning(&bad));
    }
}
