//! # hsa-heuristics — the paper's future work, implemented
//!
//! Section 6 of the paper announces the general *DAG-tasks-to-star*
//! assignment problem and names Branch-and-Bound and Genetic Algorithms as
//! the intended attack, since no polynomial exact algorithm is expected.
//! This crate builds that future:
//!
//! * [`TaskDag`] — tasks with host/satellite times and sensor pinnings,
//!   arbitrary precedence edges with transfer costs; conversion from the
//!   tree model ([`TaskDag::from_tree`]) and from tree cuts;
//! * [`list_makespan`] — the general objective: event-driven list
//!   scheduling on the star platform; [`barrier_makespan`] ties cut-shaped
//!   assignments back to the paper's `S + B` objective exactly;
//! * [`branch_and_bound`] — exact, with admissible load/critical-path
//!   bounds (validated against [`exhaustive_optimum`]);
//! * [`genetic`] and [`simulated_annealing`] — seeded metaheuristics,
//!   compared against the exact optimum in experiment T7;
//! * [`CutGenetic`], [`CutAnnealing`], [`CutBranchBound`] — the same
//!   search bodies retargeted at the paper's tree-cut problem behind the
//!   [`hsa_assign::Solver`] trait, so they race the exact solvers on one
//!   objective scoreboard (the anytime portfolio's heuristic arms).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod arms;
mod bnb;
mod dag;
mod evaluator;
mod ga;
mod sa;

pub use arms::{CutAnnealing, CutBranchBound, CutGenetic};
pub use bnb::{branch_and_bound, exhaustive_optimum, BnbConfig, BnbResult};
pub use dag::{DagAssignment, Location, Precedence, Task, TaskDag, TaskId};
pub use evaluator::{barrier_makespan, list_makespan};
pub use ga::{genetic, GaConfig, GaResult};
pub use sa::{simulated_annealing, SaConfig, SaResult};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::{
        branch_and_bound, genetic, list_makespan, simulated_annealing, BnbConfig, CutAnnealing,
        CutBranchBound, CutGenetic, GaConfig, Location, SaConfig, TaskDag,
    };
}
