//! Cut-space heuristic arms: the bnb/ga/sa search bodies retargeted at the
//! paper's *tree-cut* problem behind the [`hsa_assign::Solver`] trait.
//!
//! The DAG-model heuristics in this crate ([`crate::genetic`],
//! [`crate::simulated_annealing`], [`crate::branch_and_bound`]) optimise
//! list-scheduling makespan — a different objective space from the exact
//! solvers, so their answers cannot race the exact arm on one scoreboard.
//! These adapters search the same space the exact solvers do:
//!
//! * **Genotype**: one bit per CRU — "cut my parent edge". A top-down
//!   repair pass turns any bit string into a *valid* cut: walking from the
//!   root, a set bit on a cuttable edge closes its whole subtree, and any
//!   leaf reached uncut contributes its sensor edge. Every genotype is
//!   feasible (the all-zero genome is exactly [`Cut::all_on_host`]).
//! * **Fitness**: the λ-scaled SSB objective `λ·Σσ + (1−λ)·max_s Σβ_s`
//!   computed directly from the σ/β labels — identical, by the expanded
//!   solver's own sweep formula, to the objective an exact solve reports
//!   for the same cut. Heuristic and exact answers are therefore directly
//!   comparable, and a heuristic cost below the exact optimum is a bug.
//! * **Anytime contract**: each arm polls a [`CancelToken`] at loop
//!   boundaries and returns its best incumbent so far instead of erroring —
//!   the racing portfolio's deadline semantics. An uncancelled run is
//!   deterministic per seed.

use crate::{BnbConfig, GaConfig, SaConfig};
use hsa_assign::{AssignError, CancelToken, EvalScratch, Prepared, Solution, SolveStats, Solver};
use hsa_graph::{Cost, Lambda, ScaledSsb, SolveScratch};
use hsa_tree::{Cut, TreeEdge};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reusable per-run buffers for genome evaluation.
struct GenomeEval {
    /// Per-satellite Σβ accumulator.
    loads: Vec<Cost>,
}

impl GenomeEval {
    fn new(prep: &Prepared<'_>) -> GenomeEval {
        GenomeEval {
            loads: vec![Cost::ZERO; prep.n_satellites() as usize],
        }
    }

    /// The λ-scaled objective of the cut `genome` repairs to, without
    /// materialising the cut. One preorder pass using the subtree-size
    /// index to skip closed subtrees.
    fn objective(&mut self, prep: &Prepared<'_>, genome: &[bool], lambda: Lambda) -> ScaledSsb {
        self.loads.fill(Cost::ZERO);
        let mut s_acc = Cost::ZERO;
        let tree = prep.tree.as_ref();
        let root = tree.root();
        let mut i = 0usize;
        while i < prep.eval.preorder.len() {
            let c = prep.eval.preorder[i];
            let parent_edge = TreeEdge::Parent(c);
            if c != root && genome[c.index()] && prep.colouring.cuttable(parent_edge) {
                s_acc += prep.sigma.sigma(parent_edge);
                if let Some(s) = prep.colouring.edge_colour(parent_edge).satellite() {
                    self.loads[s.index()] += prep.beta.beta(parent_edge);
                }
                i += prep.eval.size[c.index()] as usize;
                continue;
            }
            if tree.is_leaf(c) {
                let e = TreeEdge::Sensor(c);
                s_acc += prep.sigma.sigma(e);
                if let Some(s) = prep.colouring.edge_colour(e).satellite() {
                    self.loads[s.index()] += prep.beta.beta(e);
                }
            }
            i += 1;
        }
        let b = self.loads.iter().copied().fold(Cost::ZERO, Cost::max);
        lambda.ssb_scaled(s_acc, b)
    }
}

/// Materialises the cut a genome repairs to (same walk as the objective).
fn genome_cut(prep: &Prepared<'_>, genome: &[bool]) -> Cut {
    let tree = prep.tree.as_ref();
    let root = tree.root();
    let mut edges = Vec::new();
    let mut i = 0usize;
    while i < prep.eval.preorder.len() {
        let c = prep.eval.preorder[i];
        let e = TreeEdge::Parent(c);
        if c != root && genome[c.index()] && prep.colouring.cuttable(e) {
            edges.push(e);
            i += prep.eval.size[c.index()] as usize;
            continue;
        }
        if tree.is_leaf(c) {
            edges.push(TreeEdge::Sensor(c));
        }
        i += 1;
    }
    // The walk covers every leaf exactly once with non-conflicted edges, so
    // the edge set is a valid cut by construction.
    Cut::trusted(tree, edges)
}

/// Builds the full [`Solution`] for the winning genome.
fn genome_solution(
    prep: &Prepared<'_>,
    genome: &[bool],
    lambda: Lambda,
    stats: SolveStats,
) -> Result<Solution, AssignError> {
    let cut = genome_cut(prep, genome);
    EvalScratch::with_thread_local(|es| Solution::from_cut_in(prep, cut, lambda, stats, es))
}

/// Genetic search over cut genomes (the paper's §6 GA, retargeted).
///
/// Reuses [`GaConfig`] unchanged: population / generations / tournament /
/// mutation / elitism / seed all mean the same thing, the chromosome is a
/// bit string instead of a location vector. Cancellation returns the best
/// individual bred so far.
#[derive(Clone, Copy, Debug, Default)]
pub struct CutGenetic {
    /// GA hyper-parameters (the seed makes runs replayable).
    pub config: GaConfig,
}

impl Solver for CutGenetic {
    fn name(&self) -> &'static str {
        "cut-ga"
    }

    fn solve_in(
        &self,
        prep: &Prepared<'_>,
        lambda: Lambda,
        scratch: &mut SolveScratch,
    ) -> Result<Solution, AssignError> {
        self.solve_cancellable(prep, lambda, scratch, &CancelToken::new())
    }

    fn solve_cancellable(
        &self,
        prep: &Prepared<'_>,
        lambda: Lambda,
        _scratch: &mut SolveScratch,
        cancel: &CancelToken,
    ) -> Result<Solution, AssignError> {
        let cfg = &self.config;
        let n = prep.tree.len();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let pop_size = cfg.population.max(2);
        let mut eval = GenomeEval::new(prep);
        let mut evaluated = 0u64;

        // Seed with the two trivial feasible extremes, then random genomes.
        let mut population: Vec<Vec<bool>> = Vec::with_capacity(pop_size);
        population.push(vec![false; n]);
        population.push(vec![true; n]);
        while population.len() < pop_size {
            population.push((0..n).map(|_| rng.random_bool(0.5)).collect());
        }
        let mut fitness: Vec<ScaledSsb> = population
            .iter()
            .map(|g| {
                evaluated += 1;
                eval.objective(prep, g, lambda)
            })
            .collect();

        for _gen in 0..cfg.generations {
            if cancel.is_cancelled() {
                break;
            }
            let mut idx: Vec<usize> = (0..pop_size).collect();
            idx.sort_by_key(|&i| (fitness[i], i));
            let mut next: Vec<Vec<bool>> = Vec::with_capacity(pop_size);
            for &e in idx.iter().take(cfg.elites.min(pop_size)) {
                next.push(population[e].clone());
            }
            while next.len() < pop_size {
                let a = tournament(&fitness, cfg.tournament, pop_size, &mut rng);
                let b = tournament(&fitness, cfg.tournament, pop_size, &mut rng);
                let mut child: Vec<bool> = (0..n)
                    .map(|i| {
                        if rng.random_bool(0.5) {
                            population[a][i]
                        } else {
                            population[b][i]
                        }
                    })
                    .collect();
                for gene in child.iter_mut() {
                    if rng.random_range(0..1000) < cfg.mutation_permille {
                        *gene = !*gene;
                    }
                }
                next.push(child);
            }
            population = next;
            fitness = population
                .iter()
                .map(|g| {
                    evaluated += 1;
                    eval.objective(prep, g, lambda)
                })
                .collect();
        }

        let (best_i, _) = fitness
            .iter()
            .enumerate()
            .min_by_key(|&(i, &f)| (f, i))
            .expect("non-empty population");
        genome_solution(
            prep,
            &population[best_i],
            lambda,
            SolveStats {
                evaluated,
                ..SolveStats::default()
            },
        )
    }
}

fn tournament(fitness: &[ScaledSsb], k: usize, pop: usize, rng: &mut StdRng) -> usize {
    let mut best = rng.random_range(0..pop);
    for _ in 1..k.max(1) {
        let c = rng.random_range(0..pop);
        if fitness[c] < fitness[best] {
            best = c;
        }
    }
    best
}

/// Simulated annealing over cut genomes: single-bit-flip neighbourhood,
/// Metropolis acceptance, geometric cooling ([`SaConfig`] unchanged).
/// Starts from all-on-host; cancellation returns the best incumbent.
#[derive(Clone, Copy, Debug, Default)]
pub struct CutAnnealing {
    /// SA hyper-parameters (the seed makes runs replayable).
    pub config: SaConfig,
}

impl Solver for CutAnnealing {
    fn name(&self) -> &'static str {
        "cut-sa"
    }

    fn solve_in(
        &self,
        prep: &Prepared<'_>,
        lambda: Lambda,
        scratch: &mut SolveScratch,
    ) -> Result<Solution, AssignError> {
        self.solve_cancellable(prep, lambda, scratch, &CancelToken::new())
    }

    fn solve_cancellable(
        &self,
        prep: &Prepared<'_>,
        lambda: Lambda,
        _scratch: &mut SolveScratch,
        cancel: &CancelToken,
    ) -> Result<Solution, AssignError> {
        let cfg = &self.config;
        let n = prep.tree.len();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut eval = GenomeEval::new(prep);

        let mut current = vec![false; n];
        let mut cur_obj = eval.objective(prep, &current, lambda);
        let mut best = current.clone();
        let mut best_obj = cur_obj;
        let mut evaluated = 1u64;
        let mut temp = cfg.t0.max(1e-9);

        for it in 0..cfg.iterations {
            // Poll in small batches: the per-iteration work is O(n), so a
            // 32-iteration stride still bounds cancellation latency tightly.
            if it % 32 == 0 && cancel.is_cancelled() {
                break;
            }
            let flip = rng.random_range(0..n);
            current[flip] = !current[flip];
            let cand_obj = eval.objective(prep, &current, lambda);
            evaluated += 1;
            let delta = cand_obj as f64 - cur_obj as f64;
            let accept = delta <= 0.0 || rng.random_bool((-delta / temp).exp().clamp(0.0, 1.0));
            if accept {
                cur_obj = cand_obj;
                if cur_obj < best_obj {
                    best_obj = cur_obj;
                    best.copy_from_slice(&current);
                }
            } else {
                current[flip] = !current[flip]; // revert
            }
            temp *= cfg.cooling;
        }

        genome_solution(
            prep,
            &best,
            lambda,
            SolveStats {
                evaluated,
                ..SolveStats::default()
            },
        )
    }
}

/// Branch-and-bound over cuts: preorder decision DFS with an admissible
/// partial-objective bound.
///
/// At each node the search either **cuts the parent edge** (when cuttable,
/// closing the subtree) or **descends** (a leaf reached uncut contributes
/// its sensor edge). Partial objectives only grow — σ and β are
/// non-negative — so `λ·S_partial + (1−λ)·B_partial` is an admissible
/// lower bound on every completion and prunes against the incumbent.
/// Unlike the DAG-model [`crate::branch_and_bound`] (which errors on
/// budget exhaustion), this arm is *anytime*: it seeds its incumbent with
/// all-on-host and returns the best cut found when the node budget runs
/// out or the token fires. An exhausted-free run is exact.
#[derive(Clone, Copy, Debug, Default)]
pub struct CutBranchBound {
    /// Node-budget configuration.
    pub config: BnbConfig,
}

struct BnbState<'p, 'a> {
    prep: &'p Prepared<'a>,
    lambda: Lambda,
    genome: Vec<bool>,
    loads: Vec<Cost>,
    best_genome: Vec<bool>,
    best_obj: ScaledSsb,
    nodes: u64,
    budget: u64,
    exhausted: bool,
    cancel: CancelToken,
    evaluated: u64,
}

impl BnbState<'_, '_> {
    /// DFS over preorder position `i` with partial sums `(s_acc, b_max)`.
    fn dfs(&mut self, i: usize, s_acc: Cost, b_max: Cost) {
        if self.exhausted {
            return;
        }
        self.nodes += 1;
        if self.nodes >= self.budget
            || (self.nodes.is_multiple_of(1024) && self.cancel.is_cancelled())
        {
            self.exhausted = true;
            return;
        }
        let prep = self.prep;
        if i >= prep.eval.preorder.len() {
            let obj = self.lambda.ssb_scaled(s_acc, b_max);
            self.evaluated += 1;
            if obj < self.best_obj {
                self.best_obj = obj;
                self.best_genome.copy_from_slice(&self.genome);
            }
            return;
        }
        if self.lambda.ssb_scaled(s_acc, b_max) >= self.best_obj {
            return; // admissible bound: no completion can improve
        }
        let c = prep.eval.preorder[i];
        let tree = prep.tree.as_ref();
        let parent_edge = TreeEdge::Parent(c);
        // Option 1: cut above `c`, closing its subtree.
        if c != tree.root() && prep.colouring.cuttable(parent_edge) {
            let sat = prep
                .colouring
                .edge_colour(parent_edge)
                .satellite()
                .expect("cuttable edges carry a satellite colour");
            let beta = prep.beta.beta(parent_edge);
            self.genome[c.index()] = true;
            self.loads[sat.index()] += beta;
            let b = b_max.max(self.loads[sat.index()]);
            self.dfs(
                i + prep.eval.size[c.index()] as usize,
                s_acc + prep.sigma.sigma(parent_edge),
                b,
            );
            self.loads[sat.index()] = self.loads[sat.index()] - beta;
            self.genome[c.index()] = false;
        }
        // Option 2: descend (sensor edge forced at a leaf).
        if tree.is_leaf(c) {
            let e = TreeEdge::Sensor(c);
            let sat = prep
                .colouring
                .edge_colour(e)
                .satellite()
                .expect("sensor edges carry the leaf's satellite");
            let beta = prep.beta.beta(e);
            self.loads[sat.index()] += beta;
            let b = b_max.max(self.loads[sat.index()]);
            self.dfs(i + 1, s_acc + prep.sigma.sigma(e), b);
            self.loads[sat.index()] = self.loads[sat.index()] - beta;
        } else {
            self.dfs(i + 1, s_acc, b_max);
        }
    }
}

impl Solver for CutBranchBound {
    fn name(&self) -> &'static str {
        "cut-bnb"
    }

    fn solve_in(
        &self,
        prep: &Prepared<'_>,
        lambda: Lambda,
        scratch: &mut SolveScratch,
    ) -> Result<Solution, AssignError> {
        self.solve_cancellable(prep, lambda, scratch, &CancelToken::new())
    }

    fn solve_cancellable(
        &self,
        prep: &Prepared<'_>,
        lambda: Lambda,
        _scratch: &mut SolveScratch,
        cancel: &CancelToken,
    ) -> Result<Solution, AssignError> {
        let n = prep.tree.len();
        let mut eval = GenomeEval::new(prep);
        let all_host = vec![false; n];
        let seed_obj = eval.objective(prep, &all_host, lambda);
        let mut state = BnbState {
            prep,
            lambda,
            genome: vec![false; n],
            loads: vec![Cost::ZERO; prep.n_satellites() as usize],
            best_genome: all_host,
            // Strictly-better updates still let the DFS rediscover the
            // all-host completion's equal-cost twins without losing it.
            best_obj: seed_obj.saturating_add(1),
            nodes: 0,
            budget: self.config.node_budget.max(1),
            exhausted: false,
            cancel: cancel.clone(),
            evaluated: 1,
        };
        state.dfs(0, Cost::ZERO, Cost::ZERO);
        let stats = SolveStats {
            branches: state.nodes,
            evaluated: state.evaluated,
            ..SolveStats::default()
        };
        genome_solution(prep, &state.best_genome, lambda, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_assign::{BruteForce, Expanded};
    use hsa_tree::figures::fig2_tree;

    fn prep_fig2() -> (hsa_tree::CruTree, hsa_tree::CostModel) {
        fig2_tree()
    }

    #[test]
    fn all_zero_genome_is_all_on_host() {
        let (t, m) = prep_fig2();
        let prep = Prepared::new(&t, &m).unwrap();
        let genome = vec![false; t.len()];
        let cut = genome_cut(&prep, &genome);
        assert_eq!(cut.edges(), Cut::all_on_host(&t).edges());
    }

    #[test]
    fn genome_objective_matches_full_evaluation() {
        let (t, m) = prep_fig2();
        let prep = Prepared::new(&t, &m).unwrap();
        let mut eval = GenomeEval::new(&prep);
        // A few deterministic genomes, including both extremes.
        let mut genomes = vec![vec![false; t.len()], vec![true; t.len()]];
        for k in 0..t.len() {
            let mut g = vec![false; t.len()];
            g[k] = true;
            genomes.push(g);
        }
        for g in genomes {
            for lambda in [Lambda::ZERO, Lambda::HALF, Lambda::ONE] {
                let fast = eval.objective(&prep, &g, lambda);
                let sol = genome_solution(&prep, &g, lambda, SolveStats::default()).unwrap();
                assert_eq!(fast, sol.objective, "genome {g:?} at λ={lambda:?}");
            }
        }
    }

    #[test]
    fn cut_bnb_is_exact_within_budget() {
        let (t, m) = prep_fig2();
        let prep = Prepared::new(&t, &m).unwrap();
        for lambda in [Lambda::ZERO, Lambda::HALF, Lambda::ONE] {
            let exact = BruteForce::default().solve(&prep, lambda).unwrap();
            let bnb = CutBranchBound::default().solve(&prep, lambda).unwrap();
            assert_eq!(bnb.objective, exact.objective, "λ={lambda:?}");
        }
    }

    #[test]
    fn heuristic_arms_never_beat_exact() {
        let (t, m) = prep_fig2();
        let prep = Prepared::new(&t, &m).unwrap();
        let exact = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        for arm in [
            &CutGenetic::default() as &dyn Solver,
            &CutAnnealing::default(),
            &CutBranchBound::default(),
        ] {
            let sol = arm.solve(&prep, Lambda::HALF).unwrap();
            assert!(
                sol.objective >= exact.objective,
                "{} reported {} below the optimum {}",
                arm.name(),
                sol.objective,
                exact.objective
            );
        }
    }

    #[test]
    fn cancelled_arms_still_answer_feasibly() {
        let (t, m) = prep_fig2();
        let prep = Prepared::new(&t, &m).unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        let mut ws = SolveScratch::new();
        for arm in [
            &CutGenetic::default() as &dyn Solver,
            &CutAnnealing::default(),
            &CutBranchBound::default(),
        ] {
            let sol = arm
                .solve_cancellable(&prep, Lambda::HALF, &mut ws, &cancel)
                .unwrap();
            sol.cut.validate(&t).unwrap();
        }
    }

    /// Pins one regression value per seeded heuristic under the *default*
    /// seeds, so a portfolio race replayed from a report reproduces the
    /// same arms bit-for-bit. If a deliberate algorithm change moves these
    /// numbers, update them consciously — never delete the pin.
    #[test]
    fn default_seeds_pin_regression_values() {
        let (t, m) = prep_fig2();
        let prep = Prepared::new(&t, &m).unwrap();
        let ga = CutGenetic::default().solve(&prep, Lambda::HALF).unwrap();
        assert_eq!(ga.objective, 242, "cut-ga drifted under the default seed");
        let sa = CutAnnealing::default().solve(&prep, Lambda::HALF).unwrap();
        assert_eq!(sa.objective, 242, "cut-sa drifted under the default seed");
        let dag = crate::TaskDag::from_tree(&t, &m);
        let dga = crate::genetic(&dag, &crate::GaConfig::default()).unwrap();
        assert_eq!(dga.makespan.ticks(), 148, "dag-ga drifted");
        let dsa = crate::simulated_annealing(&dag, &crate::SaConfig::default()).unwrap();
        assert_eq!(dsa.makespan.ticks(), 193, "dag-sa drifted");
    }

    #[test]
    fn arms_are_deterministic_per_seed() {
        let (t, m) = prep_fig2();
        let prep = Prepared::new(&t, &m).unwrap();
        for arm in [
            &CutGenetic::default() as &dyn Solver,
            &CutAnnealing::default(),
            &CutBranchBound::default(),
        ] {
            let a = arm.solve(&prep, Lambda::HALF).unwrap();
            let b = arm.solve(&prep, Lambda::HALF).unwrap();
            assert_eq!(a.objective, b.objective);
            assert_eq!(a.cut.edges(), b.cut.edges());
        }
    }
}
