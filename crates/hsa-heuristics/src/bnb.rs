//! Branch & Bound — the paper cites B&B [23] as the future-work exact
//! method for the general (non-tree) assignment problem.
//!
//! Depth-first over the assignment vector in topological order, with an
//! admissible lower bound: any machine's total assigned compute is a lower
//! bound on the list-scheduling makespan (a serial machine can never finish
//! before its own work), and unassigned tasks contribute at least
//! `min(host_time, satellite_time)` to *some* machine only through the
//! trivial critical-path bound, which we also apply. Exact for any
//! instance; exponential worst case, guarded by a node budget.

use crate::{list_makespan, DagAssignment, Location, TaskDag};
use hsa_graph::Cost;
use hsa_tree::SatelliteId;

/// Branch & bound configuration.
#[derive(Clone, Copy, Debug)]
pub struct BnbConfig {
    /// Hard cap on explored nodes.
    pub node_budget: u64,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            node_budget: 50_000_000,
        }
    }
}

/// Result of a B&B run.
#[derive(Clone, Debug)]
pub struct BnbResult {
    /// The optimal assignment.
    pub assignment: DagAssignment,
    /// Its list-scheduling makespan.
    pub makespan: Cost,
    /// Search nodes explored.
    pub nodes: u64,
}

/// Exact minimisation of [`list_makespan`] over all pinning-respecting
/// assignments.
pub fn branch_and_bound(dag: &TaskDag, cfg: &BnbConfig) -> Result<BnbResult, String> {
    dag.validate()?;
    let n = dag.len();
    // Critical path of minimal durations — admissible static bound.
    let min_dur: Vec<Cost> = dag
        .tasks
        .iter()
        .map(|t| match t.pinned {
            Some(_) => t.satellite_time,
            None => t.host_time.min(t.satellite_time),
        })
        .collect();
    let order = dag.topo_order()?;
    let mut cp = vec![Cost::ZERO; n];
    for &t in order.iter().rev() {
        let mut best = Cost::ZERO;
        for e in dag.edges.iter().filter(|e| e.from == t) {
            best = best.max(cp[e.to.index()]);
        }
        cp[t.index()] = best + min_dur[t.index()];
    }
    let static_lb = cp.iter().copied().fold(Cost::ZERO, Cost::max);

    struct Search<'a> {
        dag: &'a TaskDag,
        cfg: &'a BnbConfig,
        asg: DagAssignment,
        loads: Vec<Cost>, // host + satellites assigned compute
        best: Option<(Cost, DagAssignment)>,
        nodes: u64,
        static_lb: Cost,
    }

    impl Search<'_> {
        fn rec(&mut self, i: usize) -> Result<(), String> {
            self.nodes += 1;
            if self.nodes > self.cfg.node_budget {
                return Err(format!("node budget {} exhausted", self.cfg.node_budget));
            }
            // Bound: max assigned machine load, and the static critical path.
            let lb = self.loads.iter().copied().fold(self.static_lb, Cost::max);
            if let Some((ub, _)) = &self.best {
                if lb >= *ub {
                    return Ok(()); // cannot strictly improve
                }
            }
            if i == self.dag.len() {
                let mk = list_makespan(self.dag, &self.asg)?;
                if self.best.as_ref().map(|(ub, _)| mk < *ub).unwrap_or(true) {
                    self.best = Some((mk, self.asg.clone()));
                }
                return Ok(());
            }
            let choices: Vec<Location> = match self.dag.tasks[i].pinned {
                Some(s) => vec![Location::Satellite(s)],
                None => {
                    let mut v = Vec::with_capacity(1 + self.dag.n_satellites as usize);
                    v.push(Location::Host);
                    for s in 0..self.dag.n_satellites {
                        v.push(Location::Satellite(SatelliteId(s)));
                    }
                    v
                }
            };
            for loc in choices {
                let (m, d) = match loc {
                    Location::Host => (0usize, self.dag.tasks[i].host_time),
                    Location::Satellite(s) => (1 + s.index(), self.dag.tasks[i].satellite_time),
                };
                self.asg.push(loc);
                self.loads[m] += d;
                self.rec(i + 1)?;
                self.loads[m] = self.loads[m] - d;
                self.asg.pop();
            }
            Ok(())
        }
    }

    let mut search = Search {
        dag,
        cfg,
        asg: Vec::with_capacity(n),
        loads: vec![Cost::ZERO; dag.n_satellites as usize + 1],
        best: None,
        nodes: 0,
        static_lb,
    };
    search.rec(0)?;
    let (makespan, assignment) = search.best.ok_or("no feasible assignment")?;
    Ok(BnbResult {
        assignment,
        makespan,
        nodes: search.nodes,
    })
}

/// Exhaustive enumeration (no bounding) — the oracle B&B is tested against.
pub fn exhaustive_optimum(dag: &TaskDag) -> Result<Cost, String> {
    dag.validate()?;
    let n = dag.len();
    let mut asg: DagAssignment = Vec::with_capacity(n);
    fn rec(dag: &TaskDag, asg: &mut DagAssignment, best: &mut Option<Cost>) {
        if asg.len() == dag.len() {
            let mk = list_makespan(dag, asg).expect("complete assignment evaluates");
            *best = Some(best.map(|b| b.min(mk)).unwrap_or(mk));
            return;
        }
        let i = asg.len();
        match dag.tasks[i].pinned {
            Some(s) => {
                asg.push(Location::Satellite(s));
                rec(dag, asg, best);
                asg.pop();
            }
            None => {
                asg.push(Location::Host);
                rec(dag, asg, best);
                asg.pop();
                for s in 0..dag.n_satellites {
                    asg.push(Location::Satellite(SatelliteId(s)));
                    rec(dag, asg, best);
                    asg.pop();
                }
            }
        }
    }
    let mut best = None;
    rec(dag, &mut asg, &mut best);
    best.ok_or_else(|| "no feasible assignment".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_tree::figures::fig2_tree;

    #[test]
    fn bnb_matches_exhaustive_on_small_dags() {
        // Shrink the paper tree to its top few CRUs via a small synthetic
        // instance instead: 2 satellites, 6 tasks.
        let (t, m) = fig2_tree();
        let dag = crate::TaskDag::from_tree(&t, &m);
        // Too large for exhaustive (3^13); build a small slice instead.
        let small = crate::TaskDag {
            tasks: dag.tasks[..6].to_vec(),
            edges: dag
                .edges
                .iter()
                .filter(|e| e.from.index() < 6 && e.to.index() < 6)
                .cloned()
                .collect(),
            n_satellites: 2,
        };
        let exact = exhaustive_optimum(&small).unwrap();
        let bnb = branch_and_bound(&small, &BnbConfig::default()).unwrap();
        assert_eq!(bnb.makespan, exact);
    }

    #[test]
    fn bnb_prunes() {
        let (t, m) = fig2_tree();
        let dag = crate::TaskDag::from_tree(&t, &m);
        let small = crate::TaskDag {
            tasks: dag.tasks[..7].to_vec(),
            edges: dag
                .edges
                .iter()
                .filter(|e| e.from.index() < 7 && e.to.index() < 7)
                .cloned()
                .collect(),
            n_satellites: 2,
        };
        let bnb = branch_and_bound(&small, &BnbConfig::default()).unwrap();
        // 3^7 + intermediate nodes would exceed this if no pruning happened.
        assert!(bnb.nodes < 3u64.pow(8), "nodes = {}", bnb.nodes);
    }

    #[test]
    fn node_budget_errors_cleanly() {
        let (t, m) = fig2_tree();
        let dag = crate::TaskDag::from_tree(&t, &m);
        let err = branch_and_bound(&dag, &BnbConfig { node_budget: 10 });
        assert!(err.is_err());
    }
}
