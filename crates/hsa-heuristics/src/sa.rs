//! Simulated annealing — a second heuristic baseline for the future-work
//! general assignment problem (complementing the GA; both are compared
//! against B&B and the tree-exact solvers in experiment T7).

use crate::{list_makespan, DagAssignment, Location, TaskDag};
use hsa_graph::Cost;
use hsa_tree::SatelliteId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SA hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct SaConfig {
    /// Iterations.
    pub iterations: usize,
    /// Initial temperature (in makespan ticks).
    pub t0: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            iterations: 4_000,
            t0: 10_000.0,
            cooling: 0.999,
            seed: 0,
        }
    }
}

/// Result of an SA run.
#[derive(Clone, Debug)]
pub struct SaResult {
    /// Best assignment found.
    pub assignment: DagAssignment,
    /// Its makespan.
    pub makespan: Cost,
    /// Moves accepted.
    pub accepted: usize,
}

/// Runs simulated annealing from the all-on-host start (pinned tasks stay
/// put).
pub fn simulated_annealing(dag: &TaskDag, cfg: &SaConfig) -> Result<SaResult, String> {
    dag.validate()?;
    let n = dag.len();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut current: DagAssignment = (0..n)
        .map(|i| match dag.tasks[i].pinned {
            Some(s) => Location::Satellite(s),
            None => Location::Host,
        })
        .collect();
    let mut cur_mk = list_makespan(dag, &current)?;
    let mut best = current.clone();
    let mut best_mk = cur_mk;
    let mut temp = cfg.t0.max(1e-9);
    let mut accepted = 0usize;

    // Mutable (unpinned) gene indexes.
    let free: Vec<usize> = (0..n).filter(|&i| dag.tasks[i].pinned.is_none()).collect();
    if free.is_empty() {
        return Ok(SaResult {
            assignment: current,
            makespan: cur_mk,
            accepted: 0,
        });
    }

    for _ in 0..cfg.iterations {
        let gi = free[rng.random_range(0..free.len())];
        let old = current[gi];
        let pick = rng.random_range(0..=dag.n_satellites);
        current[gi] = if pick == 0 {
            Location::Host
        } else {
            Location::Satellite(SatelliteId(pick - 1))
        };
        if current[gi] == old {
            continue;
        }
        let mk = list_makespan(dag, &current)?;
        let delta = mk.ticks() as f64 - cur_mk.ticks() as f64;
        let accept = delta <= 0.0 || rng.random_bool((-delta / temp).exp().clamp(0.0, 1.0));
        if accept {
            cur_mk = mk;
            accepted += 1;
            if mk < best_mk {
                best_mk = mk;
                best = current.clone();
            }
        } else {
            current[gi] = old;
        }
        temp *= cfg.cooling;
    }
    Ok(SaResult {
        assignment: best,
        makespan: best_mk,
        accepted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{branch_and_bound, BnbConfig, TaskDag};
    use hsa_tree::figures::fig2_tree;

    fn small_dag() -> TaskDag {
        let (t, m) = fig2_tree();
        let dag = TaskDag::from_tree(&t, &m);
        TaskDag {
            tasks: dag.tasks[..7].to_vec(),
            edges: dag
                .edges
                .iter()
                .filter(|e| e.from.index() < 7 && e.to.index() < 7)
                .cloned()
                .collect(),
            n_satellites: 2,
        }
    }

    #[test]
    fn sa_is_deterministic_per_seed() {
        let dag = small_dag();
        let a = simulated_annealing(&dag, &SaConfig::default()).unwrap();
        let b = simulated_annealing(&dag, &SaConfig::default()).unwrap();
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn sa_never_beats_exact() {
        let dag = small_dag();
        let exact = branch_and_bound(&dag, &BnbConfig::default()).unwrap();
        let sa = simulated_annealing(&dag, &SaConfig::default()).unwrap();
        assert!(sa.makespan >= exact.makespan);
    }

    #[test]
    fn sa_improves_on_its_start() {
        let (t, m) = fig2_tree();
        let dag = TaskDag::from_tree(&t, &m);
        let start: DagAssignment = (0..dag.len())
            .map(|i| match dag.tasks[i].pinned {
                Some(s) => Location::Satellite(s),
                None => Location::Host,
            })
            .collect();
        let start_mk = list_makespan(&dag, &start).unwrap();
        let sa = simulated_annealing(&dag, &SaConfig::default()).unwrap();
        assert!(sa.makespan <= start_mk);
        assert!(dag.respects_pinning(&sa.assignment));
    }

    #[test]
    fn fully_pinned_instance_short_circuits() {
        let (t, m) = fig2_tree();
        let full = TaskDag::from_tree(&t, &m);
        // Keep only the sensor tasks (all pinned); no edges.
        let dag = TaskDag {
            tasks: full.tasks[13..].to_vec(),
            edges: vec![],
            n_satellites: full.n_satellites,
        };
        let sa = simulated_annealing(&dag, &SaConfig::default()).unwrap();
        assert_eq!(sa.accepted, 0);
    }
}
