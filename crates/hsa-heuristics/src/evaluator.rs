//! Makespan evaluation of DAG assignments on the star platform.
//!
//! Two evaluators:
//!
//! * [`list_makespan`] — the general model: event-driven list scheduling
//!   with one serial CPU per location; a precedence edge whose endpoints
//!   sit on different locations adds its transfer time to the data's
//!   availability. This is the objective the future-work heuristics
//!   (B&B / GA / SA) optimise, defined for *every* assignment.
//! * [`barrier_makespan`] — the paper's §3 timing model, defined only for
//!   *cut-shaped* assignments (host set upward-closed): satellites compute
//!   then transmit, host waits for everything, then computes. On such
//!   assignments it equals the tree objective `S + B`, which ties the DAG
//!   world verifiably back to the tree world (tested in `tests/`).

use crate::{DagAssignment, Location, TaskDag};
use hsa_graph::Cost;

/// Event-driven list-scheduling makespan (general assignments).
///
/// Tasks are dispatched in topological order; each location is one serial
/// machine processing its queue FIFO (deterministic: ties broken by task
/// id through the topo order). A task starts at
/// `max(machine free, all inputs arrived)`; an input arrives at
/// `producer finish + comm` when locations differ.
pub fn list_makespan(dag: &TaskDag, asg: &DagAssignment) -> Result<Cost, String> {
    if asg.len() != dag.len() {
        return Err(format!(
            "assignment covers {} of {} tasks",
            asg.len(),
            dag.len()
        ));
    }
    if !dag.respects_pinning(asg) {
        return Err("assignment violates a sensor pinning".into());
    }
    let order = dag.topo_order()?;
    let n = dag.len();
    // Per-task input-availability time.
    let mut ready = vec![Cost::ZERO; n];
    let mut finish = vec![Cost::ZERO; n];
    // Machine-free times: host + satellites.
    let mut free = vec![Cost::ZERO; dag.n_satellites as usize + 1];
    let machine = |loc: Location| -> usize {
        match loc {
            Location::Host => 0,
            Location::Satellite(s) => 1 + s.index(),
        }
    };
    // Incoming edges per task.
    let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in dag.edges.iter().enumerate() {
        incoming[e.to.index()].push(i);
    }
    for t in order {
        let ti = t.index();
        for &ei in &incoming[ti] {
            let e = &dag.edges[ei];
            let mut avail = finish[e.from.index()];
            if asg[e.from.index()] != asg[ti] {
                avail += e.comm;
            }
            ready[ti] = ready[ti].max(avail);
        }
        let m = machine(asg[ti]);
        let start = free[m].max(ready[ti]);
        let dur = match asg[ti] {
            Location::Host => dag.tasks[ti].host_time,
            Location::Satellite(_) => dag.tasks[ti].satellite_time,
        };
        let end = start + dur;
        free[m] = end;
        finish[ti] = end;
    }
    Ok(finish.into_iter().fold(Cost::ZERO, Cost::max))
}

/// The paper's barrier model on a cut-shaped assignment: per-satellite
/// `Σ satellite_time + Σ comm of satellite→host edges`, then the host's
/// `Σ host_time` after the slowest satellite. Errors when the assignment
/// has a host→satellite precedence (not cut-shaped).
pub fn barrier_makespan(dag: &TaskDag, asg: &DagAssignment) -> Result<Cost, String> {
    if asg.len() != dag.len() {
        return Err("assignment length mismatch".into());
    }
    let mut sat_load = vec![Cost::ZERO; dag.n_satellites as usize];
    let mut host = Cost::ZERO;
    for (i, t) in dag.tasks.iter().enumerate() {
        match asg[i] {
            Location::Host => host += t.host_time,
            Location::Satellite(s) => sat_load[s.index()] += t.satellite_time,
        }
    }
    for e in &dag.edges {
        match (asg[e.from.index()], asg[e.to.index()]) {
            (Location::Satellite(s), Location::Host) => sat_load[s.index()] += e.comm,
            (Location::Host, Location::Satellite(_)) => {
                return Err("not cut-shaped: host feeds a satellite task".into())
            }
            (Location::Satellite(a), Location::Satellite(b)) if a != b => {
                return Err("not cut-shaped: cross-satellite precedence".into())
            }
            _ => {}
        }
    }
    let b = sat_load.into_iter().fold(Cost::ZERO, Cost::max);
    Ok(b + host)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Precedence, Task, TaskId};
    use hsa_tree::SatelliteId;

    fn c(v: u64) -> Cost {
        Cost::new(v)
    }

    /// sensor(pinned S0) → worker → sink
    fn tiny() -> TaskDag {
        TaskDag {
            tasks: vec![
                Task {
                    name: "sensor".into(),
                    host_time: c(0),
                    satellite_time: c(0),
                    pinned: Some(SatelliteId(0)),
                },
                Task {
                    name: "worker".into(),
                    host_time: c(10),
                    satellite_time: c(4),
                    pinned: None,
                },
                Task {
                    name: "sink".into(),
                    host_time: c(3),
                    satellite_time: c(30),
                    pinned: None,
                },
            ],
            edges: vec![
                Precedence {
                    from: TaskId(0),
                    to: TaskId(1),
                    comm: c(6),
                },
                Precedence {
                    from: TaskId(1),
                    to: TaskId(2),
                    comm: c(2),
                },
            ],
            n_satellites: 1,
        }
    }

    #[test]
    fn list_makespan_accounts_for_comm() {
        let dag = tiny();
        let s0 = Location::Satellite(SatelliteId(0));
        // worker on satellite: 0 → worker 4 → +2 comm → host sink 3 = 9.
        let a = vec![s0, s0, Location::Host];
        assert_eq!(list_makespan(&dag, &a).unwrap(), c(9));
        // worker on host: sensor→host comm 6, worker 10, sink 3 = 19.
        let b = vec![s0, Location::Host, Location::Host];
        assert_eq!(list_makespan(&dag, &b).unwrap(), c(19));
    }

    #[test]
    fn barrier_matches_list_on_serial_chain() {
        let dag = tiny();
        let s0 = Location::Satellite(SatelliteId(0));
        let a = vec![s0, s0, Location::Host];
        // barrier: sat load = 4 + 2 = 6; host = 3 → 9.
        assert_eq!(barrier_makespan(&dag, &a).unwrap(), c(9));
        assert_eq!(
            barrier_makespan(&dag, &a).unwrap(),
            list_makespan(&dag, &a).unwrap()
        );
    }

    #[test]
    fn barrier_rejects_non_cut_shapes() {
        let dag = tiny();
        let s0 = Location::Satellite(SatelliteId(0));
        // host worker feeding satellite sink: downward crossing.
        let bad = vec![s0, Location::Host, s0];
        assert!(barrier_makespan(&dag, &bad).is_err());
        // list scheduling still evaluates it fine.
        assert!(list_makespan(&dag, &bad).is_ok());
    }

    #[test]
    fn pinning_violation_is_rejected() {
        let dag = tiny();
        let bad = vec![Location::Host, Location::Host, Location::Host];
        assert!(list_makespan(&dag, &bad).is_err());
    }

    #[test]
    fn resource_contention_serialises() {
        // Two independent chains on the same satellite must serialise.
        let dag = TaskDag {
            tasks: (0..2)
                .map(|i| Task {
                    name: format!("t{i}"),
                    host_time: c(100),
                    satellite_time: c(7),
                    pinned: None,
                })
                .collect(),
            edges: vec![],
            n_satellites: 1,
        };
        let s0 = Location::Satellite(SatelliteId(0));
        let a = vec![s0, s0];
        assert_eq!(list_makespan(&dag, &a).unwrap(), c(14));
        // On distinct machines they overlap.
        let b = vec![s0, Location::Host];
        assert_eq!(list_makespan(&dag, &b).unwrap(), c(100));
    }
}
