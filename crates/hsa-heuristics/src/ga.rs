//! Genetic algorithm — the paper cites GA-based task matching [24] as a
//! future-work heuristic for the general assignment problem.
//!
//! Chromosome: one [`Location`] gene per task (pinned genes frozen).
//! Fitness: the list-scheduling makespan (lower is better). Selection:
//! tournament; uniform crossover; per-gene mutation; elitism. Fully seeded
//! and deterministic.

use crate::{list_makespan, DagAssignment, Location, TaskDag};
use hsa_graph::Cost;
use hsa_tree::SatelliteId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// GA hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct GaConfig {
    /// Population size.
    pub population: usize,
    /// Generations.
    pub generations: usize,
    /// Tournament size.
    pub tournament: usize,
    /// Per-gene mutation probability, per mille.
    pub mutation_permille: u32,
    /// Elites copied unchanged each generation.
    pub elites: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 60,
            generations: 120,
            tournament: 3,
            mutation_permille: 30,
            elites: 2,
            seed: 0,
        }
    }
}

/// Result of a GA run.
#[derive(Clone, Debug)]
pub struct GaResult {
    /// Best assignment found.
    pub assignment: DagAssignment,
    /// Its makespan.
    pub makespan: Cost,
    /// Best makespan per generation (monotone non-increasing).
    pub history: Vec<Cost>,
}

fn random_location(dag: &TaskDag, i: usize, rng: &mut StdRng) -> Location {
    match dag.tasks[i].pinned {
        Some(s) => Location::Satellite(s),
        None => {
            let pick = rng.random_range(0..=dag.n_satellites);
            if pick == 0 {
                Location::Host
            } else {
                Location::Satellite(SatelliteId(pick - 1))
            }
        }
    }
}

/// Runs the GA.
pub fn genetic(dag: &TaskDag, cfg: &GaConfig) -> Result<GaResult, String> {
    dag.validate()?;
    let n = dag.len();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pop_size = cfg.population.max(2);

    let mut population: Vec<DagAssignment> = (0..pop_size)
        .map(|_| (0..n).map(|i| random_location(dag, i, &mut rng)).collect())
        .collect();
    let mut fitness: Vec<Cost> = population
        .iter()
        .map(|a| list_makespan(dag, a).expect("generated assignments are feasible"))
        .collect();

    let mut history = Vec::with_capacity(cfg.generations);
    for _gen in 0..cfg.generations {
        // Rank for elitism.
        let mut idx: Vec<usize> = (0..pop_size).collect();
        idx.sort_by_key(|&i| (fitness[i], i));
        history.push(fitness[idx[0]]);

        let mut next: Vec<DagAssignment> = Vec::with_capacity(pop_size);
        for &e in idx.iter().take(cfg.elites.min(pop_size)) {
            next.push(population[e].clone());
        }
        while next.len() < pop_size {
            let a = tournament(&fitness, cfg.tournament, pop_size, &mut rng);
            let b = tournament(&fitness, cfg.tournament, pop_size, &mut rng);
            let mut child: DagAssignment = (0..n)
                .map(|i| {
                    if rng.random_bool(0.5) {
                        population[a][i]
                    } else {
                        population[b][i]
                    }
                })
                .collect();
            for (i, gene) in child.iter_mut().enumerate() {
                if rng.random_range(0..1000) < cfg.mutation_permille {
                    *gene = random_location(dag, i, &mut rng);
                }
            }
            next.push(child);
        }
        population = next;
        fitness = population
            .iter()
            .map(|a| list_makespan(dag, a).expect("feasible"))
            .collect();
    }

    let (best_i, &makespan) = fitness
        .iter()
        .enumerate()
        .min_by_key(|&(i, &f)| (f, i))
        .expect("non-empty population");
    history.push(makespan);
    Ok(GaResult {
        assignment: population[best_i].clone(),
        makespan,
        history,
    })
}

fn tournament(fitness: &[Cost], k: usize, pop: usize, rng: &mut StdRng) -> usize {
    let mut best = rng.random_range(0..pop);
    for _ in 1..k.max(1) {
        let c = rng.random_range(0..pop);
        if fitness[c] < fitness[best] {
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{branch_and_bound, BnbConfig, TaskDag};
    use hsa_tree::figures::fig2_tree;

    fn small_dag() -> TaskDag {
        let (t, m) = fig2_tree();
        let dag = TaskDag::from_tree(&t, &m);
        TaskDag {
            tasks: dag.tasks[..7].to_vec(),
            edges: dag
                .edges
                .iter()
                .filter(|e| e.from.index() < 7 && e.to.index() < 7)
                .cloned()
                .collect(),
            n_satellites: 2,
        }
    }

    #[test]
    fn ga_is_deterministic_per_seed() {
        let dag = small_dag();
        let a = genetic(&dag, &GaConfig::default()).unwrap();
        let b = genetic(&dag, &GaConfig::default()).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn ga_never_beats_exact_and_usually_matches_on_small() {
        let dag = small_dag();
        let exact = branch_and_bound(&dag, &BnbConfig::default()).unwrap();
        let ga = genetic(&dag, &GaConfig::default()).unwrap();
        assert!(ga.makespan >= exact.makespan);
        // On a 7-task instance the GA should find the optimum.
        assert_eq!(ga.makespan, exact.makespan);
    }

    #[test]
    fn history_is_monotone_non_increasing() {
        let dag = small_dag();
        let ga = genetic(&dag, &GaConfig::default()).unwrap();
        for w in ga.history.windows(2) {
            assert!(w[1] <= w[0], "elitism must keep the best");
        }
    }

    #[test]
    fn pinned_genes_stay_pinned() {
        let (t, m) = fig2_tree();
        let dag = TaskDag::from_tree(&t, &m);
        let ga = genetic(
            &dag,
            &GaConfig {
                generations: 10,
                population: 20,
                ..GaConfig::default()
            },
        )
        .unwrap();
        assert!(dag.respects_pinning(&ga.assignment));
    }
}
