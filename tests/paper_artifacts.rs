//! Top-level acceptance tests for every paper artefact (the same
//! assertions the `repro` binary makes, kept under `cargo test` so a
//! regression in any figure fails CI).

use hsa::graph::figures::fig4_graph;
use hsa::prelude::*;
use hsa::tree::figures::{cru, fig2_tree};
use hsa::tree::TreeEdge;

/// Figure 4: the exact three-iteration SSB trace.
#[test]
fn figure4_trace() {
    let (mut g, s, t) = fig4_graph();
    let cfg = SsbConfig {
        record_trace: true,
        ..SsbConfig::default()
    };
    let out = ssb_search(&mut g, s, t, &cfg);
    assert_eq!(out.iterations, 3);
    assert_eq!(out.termination, Termination::SBound);
    let ssbs: Vec<u128> = out.trace.iter().map(|it| it.ssb).collect();
    assert_eq!(ssbs, vec![29, 20, 41]);
    let final_s = out.trace.last().unwrap().s;
    assert_eq!(final_s, Cost::new(33));
    assert_eq!(out.best.unwrap().ssb, 20);
}

/// Figure 5: colouring forces exactly {CRU1, CRU2, CRU3} onto the host.
#[test]
fn figure5_host_forced() {
    let (tree, costs) = fig2_tree();
    let col = Colouring::compute(&tree, &costs).unwrap();
    let forced: Vec<u32> = col.host_forced.iter().map(|c| c.0 + 1).collect();
    assert_eq!(forced, vec![1, 2, 3]);
}

/// Figure 6: dual-graph shape (8 nodes, 17 coloured edges, conflicted
/// edges absent, DAG on gaps).
#[test]
fn figure6_assignment_graph() {
    let (tree, costs) = fig2_tree();
    let prep = Prepared::new(&tree, &costs).unwrap();
    assert_eq!(prep.graph.dwg.num_nodes(), 8);
    assert_eq!(prep.graph.n_edges(), 17);
    assert!(!prep.graph.edges.iter().any(
        |m| m.tree_edge == TreeEdge::Parent(cru(2)) || m.tree_edge == TreeEdge::Parent(cru(3))
    ));
}

/// Figure 8: the σ labels the paper prints, symbolically.
#[test]
fn figure8_sigma_labels() {
    let (tree, costs) = fig2_tree();
    let prep = Prepared::new(&tree, &costs).unwrap();
    let h = |k: u32| costs.h(cru(k));
    let sig = |e| prep.sigma.sigma(e);
    assert_eq!(sig(TreeEdge::Parent(cru(4))), h(1) + h(2));
    assert_eq!(sig(TreeEdge::Sensor(cru(9))), h(1) + h(2) + h(4) + h(9));
    assert_eq!(sig(TreeEdge::Sensor(cru(10))), h(10));
    assert_eq!(sig(TreeEdge::Sensor(cru(13))), h(3) + h(6) + h(13));
    assert_eq!(sig(TreeEdge::Sensor(cru(7))), h(7));
    assert_eq!(sig(TreeEdge::Sensor(cru(8))), h(8));
}

/// §5.3's β examples: β(⟨CRU3,CRU6⟩) = s6+s13+c63; β(⟨A,CRU10⟩) = c_{s,10}.
#[test]
fn section53_beta_examples() {
    let (tree, costs) = fig2_tree();
    let prep = Prepared::new(&tree, &costs).unwrap();
    assert_eq!(
        prep.beta.beta(TreeEdge::Parent(cru(6))),
        costs.s(cru(6)) + costs.s(cru(13)) + costs.c_up(cru(6))
    );
    assert_eq!(
        prep.beta.beta(TreeEdge::Sensor(cru(10))),
        costs.c_raw(cru(10))
    );
}

/// The paper instance solves identically under all three exact solvers,
/// and the coloured B weight really sums same-colour contributions.
#[test]
fn paper_instance_end_to_end() {
    let (tree, costs) = fig2_tree();
    let prep = Prepared::new(&tree, &costs).unwrap();
    let paper = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
    let expanded = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
    let brute = BruteForce::default().solve(&prep, Lambda::HALF).unwrap();
    assert_eq!(paper.objective, brute.objective);
    assert_eq!(expanded.objective, brute.objective);
    // Satellite B (Sat2) serves two subtrees in the max-offload cut.
    let cut = Cut::max_offload(&tree, &prep.colouring);
    let (_a, rep) = hsa::assign::evaluate_cut(&prep, &cut).unwrap();
    let b_load = rep.satellite_loads[2].total;
    let direct = costs.s(cru(5))
        + costs.s(cru(11))
        + costs.s(cru(12))
        + costs.c_up(cru(5))
        + costs.s(cru(6))
        + costs.s(cru(13))
        + costs.c_up(cru(6));
    assert_eq!(b_load, direct);
}

/// Figure 9/10: a stalling coloured instance triggers expansion, an
/// interleaved one triggers joint branching; both stay exact.
#[test]
fn figure9_expansion_fires() {
    let (tree, costs) = random_scenario(
        &RandomTreeParams {
            n_crus: 14,
            n_satellites: 2,
            placement: Placement::Interleaved,
            ..RandomTreeParams::default()
        },
        5,
    )
    .into_parts();
    let prep = Prepared::new(&tree, &costs).unwrap();
    let sol = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
    let brute = BruteForce::default().solve(&prep, Lambda::HALF).unwrap();
    assert_eq!(sol.objective, brute.objective);
    assert!(
        sol.stats.expansions > 0,
        "interleaved instance must need expansion"
    );
}

trait IntoParts {
    fn into_parts(self) -> (CruTree, CostModel);
}
impl IntoParts for Scenario {
    fn into_parts(self) -> (CruTree, CostModel) {
        (self.tree, self.costs)
    }
}
