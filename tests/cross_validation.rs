//! Cross-layer validation through the public facade: random instances are
//! pushed through trees, graphs, solvers, the simulator and the heuristics
//! DAG, and every pair of independent computations of the same quantity
//! must agree.

use hsa::heuristics::{barrier_makespan, branch_and_bound, BnbConfig, TaskDag};
use hsa::prelude::*;

fn instances() -> Vec<(String, CruTree, CostModel)> {
    let mut out = Vec::new();
    for placement in [
        Placement::Blocked,
        Placement::Interleaved,
        Placement::Random,
    ] {
        for seed in 0..4u64 {
            let sc = random_scenario(
                &RandomTreeParams {
                    n_crus: 12,
                    n_satellites: 3,
                    placement,
                    ..RandomTreeParams::default()
                },
                seed,
            );
            out.push((
                sc.name.clone() + &format!("-{placement:?}"),
                sc.tree,
                sc.costs,
            ));
        }
    }
    out
}

#[test]
fn exact_solvers_agree_across_placements() {
    for (name, tree, costs) in instances() {
        let prep = Prepared::new(&tree, &costs).unwrap();
        for lambda in [Lambda::HALF, Lambda::ONE, Lambda::ZERO] {
            let brute = BruteForce::default().solve(&prep, lambda).unwrap();
            let paper = PaperSsb::default().solve(&prep, lambda).unwrap();
            let expanded = Expanded::default().solve(&prep, lambda).unwrap();
            assert_eq!(brute.objective, paper.objective, "{name} λ={lambda}");
            assert_eq!(brute.objective, expanded.objective, "{name} λ={lambda}");
        }
    }
}

#[test]
fn simulator_validates_optimal_deployments() {
    for (name, tree, costs) in instances() {
        let prep = Prepared::new(&tree, &costs).unwrap();
        let sol = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let paper = simulate(&prep, &sol.cut, &SimConfig::paper_model()).unwrap();
        assert_eq!(paper.end_to_end, sol.report.end_to_end, "{name}");
        let eager = simulate(&prep, &sol.cut, &SimConfig::eager()).unwrap();
        assert!(eager.end_to_end <= paper.end_to_end, "{name}");
    }
}

#[test]
fn dag_barrier_model_reproduces_tree_objective() {
    for (name, tree, costs) in instances() {
        let prep = Prepared::new(&tree, &costs).unwrap();
        let sol = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let dag = TaskDag::from_tree(&tree, &costs);
        let asg = dag.assignment_from_cut(&tree, &prep.colouring, &sol.cut);
        assert_eq!(
            barrier_makespan(&dag, &asg).unwrap(),
            sol.report.end_to_end,
            "{name}"
        );
    }
}

#[test]
fn dag_optimum_bounds_tree_optimum_below() {
    // General assignments + list scheduling can only improve on cut-shaped
    // barrier execution. Small instances only (B&B is exponential).
    for seed in [99u64, 100, 101] {
        let sc = random_scenario(
            &RandomTreeParams {
                n_crus: 7,
                n_satellites: 2,
                ..RandomTreeParams::default()
            },
            seed,
        );
        let prep = Prepared::new(&sc.tree, &sc.costs).unwrap();
        let tree_opt = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let dag = TaskDag::from_tree(&sc.tree, &sc.costs);
        let bnb = branch_and_bound(&dag, &BnbConfig::default()).unwrap();
        assert!(bnb.makespan <= tree_opt.delay(), "seed {seed}");
    }
}

#[test]
fn greedy_between_start_and_optimum() {
    for (name, tree, costs) in instances() {
        let prep = Prepared::new(&tree, &costs).unwrap();
        let opt = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        let start = MaxOffload.solve(&prep, Lambda::HALF).unwrap();
        let greedy = GreedyDescent.solve(&prep, Lambda::HALF).unwrap();
        assert!(greedy.objective >= opt.objective, "{name}");
        assert!(greedy.objective <= start.objective, "{name}");
    }
}
