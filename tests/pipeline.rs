//! End-to-end pipeline tests through the public `hsa` facade: scenario →
//! colouring → assignment graph → all solvers → simulator, on every
//! catalog scenario.

use hsa::assign::all_solvers;
use hsa::prelude::*;

#[test]
fn full_pipeline_on_every_catalog_scenario() {
    for scenario in catalog() {
        scenario.validate().unwrap();
        let prep = Prepared::new(&scenario.tree, &scenario.costs)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));

        // All solvers return valid solutions; exact ones agree.
        let mut exact: Option<u128> = None;
        for solver in all_solvers() {
            let sol = solver
                .solve(&prep, Lambda::HALF)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", scenario.name, solver.name()));
            sol.cut.validate(&scenario.tree).unwrap();
            if ["paper-ssb", "expanded", "brute-force"].contains(&solver.name()) {
                match exact {
                    None => exact = Some(sol.objective),
                    Some(o) => assert_eq!(
                        o,
                        sol.objective,
                        "{}: {} disagrees with the other exact solvers",
                        scenario.name,
                        solver.name()
                    ),
                }
            }
            // Simulating any solver's cut under the paper model reproduces
            // its reported delay.
            let sim = simulate(&prep, &sol.cut, &SimConfig::paper_model()).unwrap();
            assert_eq!(
                sim.end_to_end,
                sol.report.end_to_end,
                "{}/{}: simulation drifted from the analytic objective",
                scenario.name,
                solver.name()
            );
        }
    }
}

#[test]
fn optimal_beats_or_matches_every_baseline_everywhere() {
    for scenario in catalog() {
        let prep = Prepared::new(&scenario.tree, &scenario.costs).unwrap();
        let optimal = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        for solver in all_solvers() {
            let sol = solver.solve(&prep, Lambda::HALF).unwrap();
            assert!(
                sol.objective >= optimal.objective,
                "{}: {} beat the optimum",
                scenario.name,
                solver.name()
            );
        }
    }
}

#[test]
fn scenarios_round_trip_through_json() {
    for scenario in catalog() {
        let json = scenario.to_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back, scenario);
        // And the deserialised instance solves to the same optimum.
        let p1 = Prepared::new(&scenario.tree, &scenario.costs).unwrap();
        let p2 = Prepared::new(&back.tree, &back.costs).unwrap();
        let s1 = Expanded::default().solve(&p1, Lambda::HALF).unwrap();
        let s2 = Expanded::default().solve(&p2, Lambda::HALF).unwrap();
        assert_eq!(s1.objective, s2.objective);
    }
}

#[test]
fn lambda_sweep_is_consistent_on_catalog() {
    // λ=1 minimises S alone; λ=0 minimises B alone; λ=½ sits between both
    // optima's components.
    for scenario in catalog() {
        let prep = Prepared::new(&scenario.tree, &scenario.costs).unwrap();
        let s_opt = Expanded::default().solve(&prep, Lambda::ONE).unwrap();
        let b_opt = Expanded::default().solve(&prep, Lambda::ZERO).unwrap();
        let mid = Expanded::default().solve(&prep, Lambda::HALF).unwrap();
        assert!(mid.report.host_time >= s_opt.report.host_time);
        assert!(mid.report.bottleneck >= b_opt.report.bottleneck);
    }
}
