//! Workspace smoke test: every registered solver runs on the paper's own
//! Figure 2 instance, and the three *exact* solvers (`PaperSsb`, `Expanded`,
//! `BruteForce`) agree on the objective at the λ extremes and the paper's
//! λ = ½ — the quickest possible end-to-end sanity check that the whole
//! pipeline (tree → colouring → assignment graph → search) is wired up.

use hsa::prelude::*;

fn lambdas() -> [Lambda; 3] {
    [
        Lambda::new(0, 1).unwrap(),
        Lambda::HALF,
        Lambda::new(1, 1).unwrap(),
    ]
}

#[test]
fn exact_solvers_agree_on_paper_scenario_at_lambda_extremes_and_half() {
    let scenario = hsa::workloads::paper_scenario();
    scenario.validate().unwrap();
    let prep = Prepared::new(&scenario.tree, &scenario.costs).unwrap();
    for lambda in lambdas() {
        let brute = BruteForce::default().solve(&prep, lambda).unwrap();
        let expanded = Expanded::default().solve(&prep, lambda).unwrap();
        let paper = PaperSsb::default().solve(&prep, lambda).unwrap();
        assert_eq!(
            brute.objective, expanded.objective,
            "Expanded disagrees with BruteForce at λ={lambda}"
        );
        assert_eq!(
            brute.objective, paper.objective,
            "PaperSsb disagrees with BruteForce at λ={lambda}"
        );
    }
}

#[test]
fn every_registered_solver_runs_and_respects_the_optimum() {
    let scenario = hsa::workloads::paper_scenario();
    let prep = Prepared::new(&scenario.tree, &scenario.costs).unwrap();
    for lambda in lambdas() {
        let optimum = BruteForce::default().solve(&prep, lambda).unwrap();
        for solver in hsa::assign::all_solvers() {
            let sol = solver
                .solve(&prep, lambda)
                .unwrap_or_else(|e| panic!("{} failed at λ={lambda}: {e}", solver.name()));
            sol.cut.validate(&scenario.tree).unwrap();
            assert!(
                sol.objective >= optimum.objective,
                "{} reported an objective below the optimum at λ={lambda}",
                solver.name()
            );
        }
    }
}

#[test]
fn whole_catalog_solves_and_simulates() {
    for scenario in hsa::workloads::catalog() {
        scenario.validate().unwrap();
        let prep = Prepared::new(&scenario.tree, &scenario.costs).unwrap();
        let sol = PaperSsb::default().solve(&prep, Lambda::HALF).unwrap();
        // The simulator must reproduce the analytic objective on the
        // solver's own cut (the paper's timing model).
        let sim = hsa::sim::simulate(&prep, &sol.cut, &hsa::sim::SimConfig::paper_model()).unwrap();
        assert_eq!(
            sim.end_to_end, sol.report.end_to_end,
            "simulated delay diverges from the analytic S+B on {}",
            scenario.name
        );
    }
}
