//! Offline vendored stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate: just enough of `Bytes` / `BytesMut` / `BufMut` for building frame
//! payloads. Backed by a plain `Vec<u8>` — no refcounted zero-copy views.

#![forbid(unsafe_code)]

use core::ops::Deref;

/// An immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Empties the buffer, keeping its capacity (for reuse across frames).
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Append-style writing, big-endian for the multi-byte putters (matching
/// upstream `bytes`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

// Upstream `bytes` implements `BufMut` for `Vec<u8>` too; mirrored here so
// hot paths can frame directly into a caller-owned, reusable `Vec`.
impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32(0xDEAD_BEEF);
        b.put_u16(0x0102);
        b.put_u8(0xFF);
        let f = b.freeze();
        assert_eq!(&f[..], &[0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0xFF]);
        assert_eq!(f.len(), 7);
    }
}
