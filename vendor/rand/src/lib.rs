//! Offline vendored stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, providing the subset of the 0.9 API this workspace uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::random_range`] over integer ranges
//! and [`Rng::random_bool`], plus [`rngs::StdRng`].
//!
//! The generator is SplitMix64 — deterministic, seedable and plenty good for
//! workload generation and randomised heuristics. It is **not** the upstream
//! ChaCha-based `StdRng`, so streams differ from the real crate (everything
//! in this workspace only relies on determinism per seed, not on a specific
//! stream).

#![forbid(unsafe_code)]

/// A source of randomness: the subset of `rand::RngCore` we need.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range (helper for
/// [`Rng::random_range`]).
pub trait SampleRange<T> {
    /// Draw one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types with a uniform sampler (mirrors `rand::distr::uniform::SampleUniform`
/// closely enough for inference: the range's element type *is* the output
/// type, so `rng.random_range(0..n) < some_u32` infers the literals as u32).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` or `[lo, hi]`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = ((hi as i128) - (lo as i128) + 1) as u128;
                    ((lo as i128) + ((rng.next_u64() as u128) % span) as i128) as $t
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = ((hi as i128) - (lo as i128)) as u128;
                    ((lo as i128) + ((rng.next_u64() as u128) % span) as i128) as $t
                }
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing trait: uniform sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`). Panics on an
    /// empty range, like upstream.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 high bits → uniform f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.random_range(5u32..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn bool_probabilities_extreme() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        let mut r2 = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| r2.random_bool(1.0)));
    }
}
