//! Offline vendored stand-in for `serde_json`, printing and parsing the
//! vendored serde [`Value`] tree as JSON.
//!
//! Supports everything the workspace round-trips: objects, arrays, strings
//! with escapes (`\uXXXX` incl. surrogate pairs), integers (split into
//! `UInt`/`Int` like the value model), floats, booleans and `null`.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialisation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialises `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialises `value` as compact JSON **appended** to `out` — the
/// buffer-reuse sibling of [`to_string`] (same printer, so the bytes are
/// identical). Callers that encode many values clear and reuse one
/// `String` instead of allocating per value.
pub fn to_string_into<T: Serialize + ?Sized>(value: &T, out: &mut String) -> Result<(), Error> {
    write_value(&value.to_value(), out, None, 0);
    Ok(())
}

/// Serialises `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::from_value(&value).map_err(Error::new)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest round-trippable representation.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no space
                    }
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes: back up and take the
                    // full character.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
                    let c = s.chars().next().unwrap();
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(u) = stripped.parse::<u64>() {
                    if u == 0 {
                        return Ok(Value::UInt(0));
                    }
                    if let Ok(i) = text.parse::<i64>() {
                        return Ok(Value::Int(i));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(from_str::<u64>(&to_string(&7u64).unwrap()).unwrap(), 7);
        assert_eq!(from_str::<i32>(&to_string(&-7i32).unwrap()).unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(
            from_str::<String>(&to_string("a\"b\\c\nd").unwrap()).unwrap(),
            "a\"b\\c\nd"
        );
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn round_trip_containers() {
        let v = vec![(1u32, "x".to_string()), (2, "y".to_string())];
        let s = to_string(&v).unwrap();
        let back: Vec<(u32, String)> = from_str(&s).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Vec<(u32, String)> = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn u64_max_survives() {
        let s = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), u64::MAX);
    }
}
