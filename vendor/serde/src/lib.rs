//! Offline vendored stand-in for [`serde`](https://serde.rs).
//!
//! Instead of serde's visitor-based zero-copy architecture this little crate
//! uses a concrete [`Value`] tree as the data model: `Serialize` renders a
//! type *into* a [`Value`], `Deserialize` rebuilds a type *from* one. The
//! companion vendored `serde_json` crate prints/parses `Value` as JSON, and
//! the vendored `serde_derive` proc-macro generates the impls for structs
//! and enums (unit/newtype/tuple/struct variants, plus
//! `#[serde(transparent)]`).
//!
//! The representation choices mirror upstream serde's JSON conventions so
//! that files written by the real crates would parse identically for the
//! shapes this workspace uses: newtype structs serialise as their inner
//! value, unit enum variants as strings, data variants as one-entry maps.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every type serialises into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer (always < 0; non-negatives normalise to `UInt`).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field names / variant tags).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialisation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Render into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Helpers used by the generated derive code.
pub mod value {
    use super::{DeError, Value};

    /// Look up a struct field in a map, erroring on absence.
    pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
        entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => return Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!(
                        concat!("value {} out of range for ", stringify!($t)), raw)))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u).map_err(|_| {
                        DeError::custom(format!("value {u} out of range for i64"))
                    })?,
                    other => return Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!(
                        concat!("value {} out of range for ", stringify!($t)), raw)))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

// 128-bit integers don't fit the `Value::UInt(u64)` / `Value::Int(i64)`
// payloads, so they travel as decimal strings (lossless, JSON-safe). Small
// values arriving as plain integers are also accepted on the way in.
macro_rules! impl_int128 {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Str(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Str(s) => s.parse::<$t>().map_err(|_| {
                        DeError::custom(format!(
                            concat!("invalid ", stringify!($t), " literal {:?}"), s))
                    }),
                    Value::UInt(u) => <$t>::try_from(*u).map_err(|_| {
                        DeError::custom(format!(
                            concat!("value {} out of range for ", stringify!($t)), u))
                    }),
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        DeError::custom(format!(
                            concat!("value {} out of range for ", stringify!($t)), i))
                    }),
                    other => Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                }
            }
        }
    )*};
}
impl_int128!(u128, i128);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::custom(format!("expected char, got {v:?}")))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Forwarding and container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::custom(format!("expected sequence, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::custom(format!("expected sequence, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::custom(format!("expected map, got {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v.as_seq().ok_or_else(|| {
                    DeError::custom(format!("expected tuple sequence, got {v:?}"))
                })?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected}, got {} elements", seq.len())));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
