//! Offline vendored stand-in for [`criterion`](https://bheisler.github.io/criterion.rs/book/).
//!
//! A minimal wall-clock harness with the same surface the workspace benches
//! use: `Criterion::default().sample_size(..).warm_up_time(..)
//! .measurement_time(..)`, `bench_function`, `benchmark_group` +
//! `bench_with_input(BenchmarkId::new(..), ..)`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Output is one line per benchmark: median ns/iter over `sample_size`
//! samples. `--test` (as passed by `cargo test --benches`) runs each
//! benchmark body exactly once without timing; a positional CLI argument
//! filters benchmarks by substring, like upstream.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of a parameterised benchmark: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("solve", n)` → `solve/n`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A bare id with no parameter part.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    cfg: &'a RunConfig,
    id: String,
}

#[derive(Clone, Debug)]
struct RunConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Bencher<'_> {
    /// Times `routine`, printing one summary line.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.cfg.test_mode {
            black_box(routine());
            println!("test {} ... ok (bench smoke)", self.id);
            return;
        }
        // Warm-up: find an iteration count that fills a sample.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time || iters_done == 0 {
            black_box(routine());
            iters_done += 1;
            if iters_done >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / (iters_done as u128);
        let samples = self.cfg.sample_size.max(2);
        let budget_per_sample = self.cfg.measurement_time.as_nanos() / (samples as u128);
        let iters_per_sample = (budget_per_sample / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        let mut measured: Vec<u128> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            measured.push(t.elapsed().as_nanos() / (iters_per_sample as u128));
        }
        measured.sort_unstable();
        let median = measured[measured.len() / 2];
        let lo = measured[0];
        let hi = measured[measured.len() - 1];
        println!(
            "{:<52} time: [{} {} {}]  ({} samples × {} iters)",
            self.id,
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi),
            samples,
            iters_per_sample
        );
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The harness entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    cfg: RunConfig,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            cfg: RunConfig {
                sample_size: 100,
                warm_up_time: Duration::from_secs(3),
                measurement_time: Duration::from_secs(5),
                test_mode: false,
            },
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n;
        self
    }

    /// Warm-up duration before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Applies CLI arguments (`--test`, substring filter); called by
    /// [`criterion_group!`].
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => self.cfg.test_mode = true,
                // Boolean flags cargo or upstream criterion pass through.
                "--bench" | "--verbose" | "--quiet" | "--noplot" | "--list" => {}
                s if s.starts_with("--") => {
                    // Any other `--flag`: assume it takes a value (upstream
                    // criterion's unrecognised flags all do) and swallow it,
                    // so the value is never mistaken for a name filter.
                    if args.peek().is_some_and(|v| !v.starts_with("--")) {
                        let _ = args.next();
                    }
                }
                other => self.filter = Some(other.to_string()),
            }
        }
        self
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if self.selected(id) {
            let mut b = Bencher {
                cfg: &self.cfg,
                id: id.to_string(),
            };
            f(&mut b);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into());
        if self.parent.selected(&full) {
            let mut b = Bencher {
                cfg: &self.parent.cfg,
                id: full,
            };
            f(&mut b);
        }
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self.parent.selected(&full) {
            let mut b = Bencher {
                cfg: &self.parent.cfg,
                id: full,
            };
            f(&mut b, input);
        }
        self
    }

    /// Finishes the group (upstream emits summaries here; we have none).
    pub fn finish(self) {}
}

/// Declares a group-runner function from a config and target benchmarks.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("solve", 7).id, "solve/7");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn bench_runs_in_test_mode() {
        let mut c = Criterion::default();
        c.cfg.test_mode = true;
        let mut hits = 0u32;
        c.bench_function("counts", |b| b.iter(|| hits += 1));
        assert!(hits >= 1);
    }

    #[test]
    fn filter_skips_unmatched() {
        let mut c = Criterion::default();
        c.cfg.test_mode = true;
        c.filter = Some("nope".to_string());
        let mut hits = 0u32;
        c.bench_function("counts", |b| b.iter(|| hits += 1));
        assert_eq!(hits, 0);
    }
}
