//! Offline vendored stand-in for [`proptest`](https://proptest-rs.github.io/).
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro with
//! `#![proptest_config(...)]`, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, integer-range and tuple strategies,
//! [`collection::vec`], [`Just`], and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from upstream: generation is a fixed deterministic stream
//! per test (seeded from the test name, overridable with the
//! `PROPTEST_SEED` environment variable), and failing cases are **not
//! shrunk** — the failure message carries the case number and seed so a run
//! can be reproduced exactly.

#![forbid(unsafe_code)]

/// Deterministic RNG handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for a named test: seed = fnv1a(name) ⊕ `PROPTEST_SEED` (if set).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.trim().parse::<u64>() {
                h ^= extra;
            }
        }
        TestRng { state: h }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u128) -> u128 {
        assert!(n > 0, "cannot sample an empty range");
        (self.next_u64() as u128) % n
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-`proptest!` configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
    /// Give up after `cases × max_global_rejects_factor` rejections.
    pub max_global_rejects_factor: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects_factor: 20,
        }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a dependent second-stage strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + rng.below(span)) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + rng.below(span)) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s of exactly `len` elements.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test file needs.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// The test-defining macro. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                let mut executed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = cfg.cases.saturating_mul(cfg.max_global_rejects_factor);
                while executed < cfg.cases {
                    if attempts >= max_attempts {
                        panic!(
                            "proptest `{}`: too many rejected cases ({} attempts, {} executed)",
                            stringify!($name), attempts, executed
                        );
                    }
                    attempts += 1;
                    $(let $p = $crate::Strategy::generate(&($s), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => executed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case {}: {}\n(re-run with the same build for the identical deterministic stream)",
                                stringify!($name), executed, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), lhs, rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), lhs, rhs
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if *lhs == *rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                lhs
            )));
        }
    }};
}

/// Reject the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3u32..10, b in 0usize..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b <= 4);
        }

        #[test]
        fn maps_and_vecs(v in crate::collection::vec(0u64..5, 7)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..6).prop_flat_map(|n| {
            (crate::Just(n), crate::collection::vec(0usize..n, n))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < n));
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
