//! Derive macros for the vendored `serde` stand-in.
//!
//! Hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote`, which are
//! unavailable offline). Supports exactly the shapes this workspace uses:
//!
//! * structs with named fields (plus `#[serde(transparent)]` newtypes);
//! * tuple structs (single-field ones serialise as the inner value, like
//!   upstream serde's newtype convention);
//! * enums with unit / newtype / tuple variants (unit ⇒ string, data ⇒
//!   one-entry map keyed by the variant name).
//!
//! Generics are intentionally unsupported — the derive panics with a clear
//! message rather than emitting wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
        transparent: bool,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Returns `true` if this attribute group is `serde(transparent)`.
fn attr_is_transparent(group: &proc_macro::Group) -> bool {
    let mut it = group.stream().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(i)), Some(TokenTree::Group(inner))) if i.to_string() == "serde" => {
            inner
                .stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "transparent"))
        }
        _ => false,
    }
}

/// Consumes leading attributes from `toks[*i]`, reporting whether any was
/// `#[serde(transparent)]`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut transparent = false;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if attr_is_transparent(g) {
                        transparent = true;
                    }
                    *i += 1;
                }
            }
            _ => break,
        }
    }
    transparent
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(&toks[*i], TokenTree::Ident(id) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Splits the tokens of a brace/paren group at top-level commas (tracking
/// `<…>` nesting, which is *not* a token group). The `>` of a joint `->`
/// (e.g. in an `fn(..) -> T` field type) is not a closing angle bracket,
/// and a stray `>` never drives the depth negative.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle: i32 = 0;
    let mut prev_joint_minus = false;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && !prev_joint_minus => {
                angle = (angle - 1).max(0);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                prev_joint_minus = false;
                out.push(Vec::new());
                continue;
            }
            _ => {}
        }
        prev_joint_minus = matches!(
            &t,
            TokenTree::Punct(p)
                if p.as_char() == '-' && p.spacing() == proc_macro::Spacing::Joint
        );
        out.last_mut().unwrap().push(t);
    }
    if out.last().map(Vec::is_empty).unwrap_or(false) {
        out.pop();
    }
    out
}

/// Parses the field list of a named-fields body, returning field names.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    split_top_level_commas(group.stream())
        .into_iter()
        .map(|toks| {
            let mut i = 0usize;
            skip_attrs(&toks, &mut i);
            skip_vis(&toks, &mut i);
            match &toks[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: unexpected token in field position: {other}"),
            }
        })
        .collect()
}

fn parse_variant_fields(toks: &[TokenTree], i: &mut usize) -> Fields {
    match toks.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            *i += 1;
            Fields::Tuple(split_top_level_commas(g.stream()).len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            *i += 1;
            Fields::Named(parse_named_fields(g))
        }
        _ => Fields::Unit,
    }
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    let transparent = skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported — `{name}`");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(split_top_level_commas(g.stream()).len())
                }
                _ => Fields::Unit,
            };
            Item::Struct {
                name,
                fields,
                transparent,
            }
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.clone(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            let variants = split_top_level_commas(body.stream())
                .into_iter()
                .map(|vtoks| {
                    let mut j = 0usize;
                    skip_attrs(&vtoks, &mut j);
                    let vname = match &vtoks[j] {
                        TokenTree::Ident(id) => id.to_string(),
                        other => panic!("serde_derive: bad variant: {other}"),
                    };
                    j += 1;
                    let fields = parse_variant_fields(&vtoks, &mut j);
                    Variant {
                        name: vname,
                        fields,
                    }
                })
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Code generation (as strings; `TokenStream: FromStr` does the lexing)
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct {
            name,
            fields,
            transparent,
        } => {
            let expr = match &fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(names) if transparent && names.len() == 1 => {
                    format!("::serde::Serialize::to_value(&self.{})", names[0])
                }
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {expr} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Serialize::to_value(x0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                                 ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let entries: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vn}\"\
                                 .to_string(), ::serde::Value::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    body.parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct {
            name,
            fields,
            transparent,
        } => {
            let expr = match &fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(names) if transparent && names.len() == 1 => format!(
                    "::std::result::Result::Ok({name} {{ {}: ::serde::Deserialize::from_value(v)? }})",
                    names[0]
                ),
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::value::field(m, \"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let m = v.as_map().ok_or_else(|| ::serde::DeError::custom(\
                         format!(\"expected map for struct {name}, got {{v:?}}\")))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&seq[{k}])?"))
                        .collect();
                    format!(
                        "let seq = v.as_seq().ok_or_else(|| ::serde::DeError::custom(\
                         format!(\"expected sequence for tuple struct {name}\")))?;\n\
                         if seq.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::DeError::custom(format!(\"expected {n} elements\"))); }}\n\
                         ::std::result::Result::Ok({name}({}))",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {expr}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&seq[{k}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let seq = inner.as_seq().ok_or_else(|| ::serde::DeError::custom(\
                                 \"expected sequence for tuple variant\"))?;\n\
                                 if seq.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::DeError::custom(\"wrong tuple variant arity\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n}}",
                                inits.join(", ")
                            ))
                        }
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::value::field(fm, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let fm = inner.as_map().ok_or_else(|| ::serde::DeError::custom(\
                                 \"expected map for struct variant\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }})\n}}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     match v {{\n\
                         ::serde::Value::Str(s) => match s.as_str() {{\n\
                             {units}\n\
                             other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }},\n\
                         ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                             let (tag, inner) = &entries[0];\n\
                             let _ = inner;\n\
                             match tag.as_str() {{\n\
                                 {datas}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                                     format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }}\n\
                         }},\n\
                         other => ::std::result::Result::Err(::serde::DeError::custom(\
                             format!(\"expected {name} variant, got {{other:?}}\"))),\n\
                     }}\n\
                 }}\n\
                 }}",
                units = unit_arms.join("\n"),
                datas = data_arms.join("\n"),
            )
        }
    };
    body.parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}
